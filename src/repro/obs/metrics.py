"""A process-wide registry of named counters, gauges, and histograms.

The execution stack already keeps several ad-hoc ledgers — the
executor's :class:`~repro.exec.executor.ExecutorStats`, the backends'
``cache_stats()`` merges, the cloud service's
:class:`~repro.service.cloud.ServiceStats` fault counters. Each is the
right *source of truth* for its layer (they are diffed, pickled, and
pinned by tests), but there was no single place to read them together.
:class:`MetricsRegistry` is that place: layers :meth:`ingest` their
ledgers under a stable prefix (``exec.*``, ``cache.*``, ``service.*``),
live instrumentation bumps counters directly, and the tracer feeds
per-span wall-time histograms — one ``snapshot()``/``to_text()`` shows
where time and shots went.

Semantics:

* :class:`Counter` — monotonic; ``add`` refuses negative increments and
  ``advance_to`` (used when absorbing an absolute cumulative ledger
  value) never moves backwards, so repeated ingestion is idempotent.
* :class:`Gauge` — last-write-wins level (pool size, resident bytes).
* :class:`Histogram` — count/sum/min/max plus fixed decade buckets;
  enough to see the shape of span durations without reservoir sampling.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, TextIO

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically non-decreasing named value.

    Increments are atomic (per-metric lock, shared with the owning
    registry when there is one) so concurrent instrumented threads —
    the multi-tenant service's worker pool — never lose updates.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(
        self, name: str, lock: Optional[threading.RLock] = None
    ) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (add {amount})"
            )
        with self._lock:
            self.value += amount

    def advance_to(self, value: float) -> None:
        """Absorb an absolute cumulative ledger value: move forward to
        ``value`` if it is ahead, stay put otherwise (idempotent)."""
        with self._lock:
            if value > self.value:
                self.value = value


class Gauge:
    """A last-write-wins level (pool size, resident bytes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram bucket upper bounds: decades from 1 microsecond to
#: 1000 seconds cover everything from a span push to a full experiment.
_DECADE_BUCKETS = tuple(10.0**e for e in range(-6, 4))


class Histogram:
    """Count/sum/min/max plus fixed-boundary bucket counts."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets or _DECADE_BUCKETS))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` observations of ``value`` in one update.

        Used when one measured region amortizes over many units of work
        (a grouped batch collapsing many candidates into one
        contraction): the per-unit value lands ``count`` times, so
        percentiles stay comparable with the one-span-per-unit shape.
        """
        if count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += value * count
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += count
                    return
            self.bucket_counts[-1] += count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.buckets, self.bucket_counts)
                if count
            },
        }


#: Ledger keys that are levels, not cumulative totals — ingested as
#: gauges so a shrinking pool or an evicted cache never trips the
#: counter monotonicity contract.
_GAUGE_KEYS = frozenset(
    {
        "workers",
        "entries",
        "prefix_entries",
        "prefix_bytes",
        "sim_prefix_bytes",
        "dist_entries",
        "lower_entries",
        "epoch",
    }
)


class MetricsRegistry:
    """Named metrics, created on first use, read out together."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # One reentrant lock for the whole registry: metric creation,
        # every counter/histogram mutation, and snapshot iteration all
        # serialize on it, so concurrent service threads can share one
        # installed registry.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Metric accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(
                    name, lock=self._lock
                )
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, buckets, lock=self._lock
                )
            return metric

    # ------------------------------------------------------------------
    # Ledger absorption
    # ------------------------------------------------------------------
    def ingest(self, prefix: str, ledger: Mapping[str, Any]) -> None:
        """Absorb a cumulative stats mapping under ``prefix``.

        Scalar values become counters advanced to the ledger's absolute
        value (never backwards — re-ingesting an older snapshot is a
        no-op), except keys in the known gauge set, which become gauges.
        Nested mappings (per-tag breakdowns) flatten into
        ``prefix.key.subkey``. Non-numeric values are skipped.
        """
        for key, value in ledger.items():
            name = f"{prefix}.{key}"
            if isinstance(value, Mapping):
                self.ingest(name, value)
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            elif key in _GAUGE_KEYS:
                self.gauge(name).set(float(value))
            else:
                self.counter(name).advance_to(float(value))

    def ingest_executor(self, stats) -> None:
        """Absorb an :class:`~repro.exec.executor.ExecutorStats` ledger."""
        self.ingest("exec", stats.snapshot())

    def ingest_cache(self, cache_stats: Mapping[str, int]) -> None:
        """Absorb a backend ``cache_stats()`` merge."""
        self.ingest("cache", cache_stats)

    def ingest_service(self, stats) -> None:
        """Absorb a :class:`~repro.service.cloud.ServiceStats` ledger."""
        self.ingest("service", stats.snapshot())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: metric.value
                    for name, metric in sorted(self._counters.items())
                },
                "gauges": {
                    name: metric.value
                    for name, metric in sorted(self._gauges.items())
                },
                "histograms": {
                    name: metric.snapshot()
                    for name, metric in sorted(self._histograms.items())
                },
            }

    def dump_jsonl(self, file: "TextIO") -> None:
        """One JSON line per metric: ``{"metric": name, "type": ...}``."""
        snapshot = self.snapshot()
        for kind_key, kind in (
            ("counters", "counter"),
            ("gauges", "gauge"),
            ("histograms", "histogram"),
        ):
            for name, value in snapshot[kind_key].items():
                json.dump(
                    {"metric": name, "type": kind, "value": value},
                    file,
                    separators=(",", ":"),
                )
                file.write("\n")

    def to_text(self) -> str:
        """Human-readable dump, one aligned line per metric."""
        with self._lock:
            return self._to_text_locked()

    def _to_text_locked(self) -> str:
        lines: List[str] = []
        names = list(self._counters) + list(self._gauges) + list(
            self._histograms
        )
        width = max((len(name) for name in names), default=0)
        for name in sorted(self._counters):
            value = self._counters[name].value
            rendered = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"{name:<{width}}  {rendered}")
        for name in sorted(self._gauges):
            lines.append(f"{name:<{width}}  {self._gauges[name].value:g}")
        for name in sorted(self._histograms):
            metric = self._histograms[name]
            lines.append(
                f"{name:<{width}}  count={metric.count} "
                f"mean={metric.mean:.6g} min={metric.min or 0:.6g} "
                f"max={metric.max or 0:.6g}"
            )
        return "\n".join(lines)
