"""Trace/metric readers and human-readable renderers.

The wire format is JSON lines — one finished span per line, in finish
order (children before parents, since a span finishes before the region
that opened it). :func:`read_trace` loads a file back into dicts;
:func:`render_trace` turns spans (live :class:`~repro.obs.tracer.Span`
objects or loaded dicts) into the indented tree the CLI prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from .tracer import Span

__all__ = ["read_trace", "render_trace"]

#: Span attributes promoted into the rendered summary column.
_SUMMARY_KEYS = ("jobs", "shots", "tag", "link", "candidates", "workers")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file into span dicts (finish order)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as file:
        for line in file:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _as_dicts(
    spans: Iterable[Union[Span, Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    return [
        span.to_dict() if isinstance(span, Span) else span for span in spans
    ]


def render_trace(
    spans: Iterable[Union[Span, Dict[str, Any]]],
    max_events: int = 3,
) -> str:
    """An indented tree, one line per span, roots in start order.

    Each line shows the span name, wall time, simulated device time
    (when the tracer had a device clock), a short attribute summary,
    and up to ``max_events`` event names.
    """
    records = _as_dicts(spans)
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record.get("parent_id"), []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_wall_s", 0.0))

    lines: List[str] = []

    def walk(record: Dict[str, Any], depth: int) -> None:
        parts = [f"{'  ' * depth}{record['name']}"]
        parts.append(f"{record.get('wall_time_s', 0.0) * 1e3:.2f} ms")
        if record.get("device_time_us") is not None:
            parts.append(f"{record['device_time_us']:.0f} us device")
        attributes = record.get("attributes", {})
        summary = ", ".join(
            f"{key}={attributes[key]}"
            for key in _SUMMARY_KEYS
            if key in attributes
        )
        if summary:
            parts.append(summary)
        if record.get("status") != "ok":
            parts.append(f"status={record.get('status')}")
        events = record.get("events", [])
        if events:
            shown = ", ".join(e["name"] for e in events[:max_events])
            suffix = "..." if len(events) > max_events else ""
            parts.append(f"[{shown}{suffix}]")
        lines.append("  ".join(parts))
        for child in children.get(record["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
