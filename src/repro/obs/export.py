"""Trace/metric readers and human-readable renderers.

The wire format is JSON lines — one finished span per line, in finish
order (children before parents, since a span finishes before the region
that opened it). :func:`read_trace` loads a file back into dicts;
:func:`render_trace` turns spans (live :class:`~repro.obs.tracer.Span`
objects or loaded dicts) into the indented tree the CLI prints.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .tracer import Span

__all__ = [
    "read_trace",
    "render_trace",
    "filter_spans",
    "attr_values",
    "group_by_attr",
    "percentile",
    "percentiles",
]

#: Span attributes promoted into the rendered summary column.
_SUMMARY_KEYS = ("jobs", "shots", "tag", "link", "candidates", "workers")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file into span dicts (finish order)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as file:
        for line in file:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _as_dicts(
    spans: Iterable[Union[Span, Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    return [
        span.to_dict() if isinstance(span, Span) else span for span in spans
    ]


def filter_spans(
    spans: Iterable[Union[Span, Dict[str, Any]]],
    name: Optional[str] = None,
    **attrs: Any,
) -> List[Dict[str, Any]]:
    """Spans (as dicts) matching a name and/or exact attribute values.

    The building block the SLO analyzer queries traces with: ``filter_
    spans(spans, "svc.request", tenant="alice")`` selects one tenant's
    request summaries. Live :class:`Span` objects are converted, so the
    same query runs on an in-process tracer or a loaded JSONL file.
    """
    selected = []
    for record in _as_dicts(spans):
        if name is not None and record.get("name") != name:
            continue
        attributes = record.get("attributes", {})
        if any(
            attributes.get(key) != value for key, value in attrs.items()
        ):
            continue
        selected.append(record)
    return selected


def attr_values(
    spans: Iterable[Union[Span, Dict[str, Any]]], key: str
) -> List[Any]:
    """One attribute's value per span, skipping spans that lack it."""
    values = []
    for record in _as_dicts(spans):
        attributes = record.get("attributes", {})
        if key in attributes:
            values.append(attributes[key])
    return values


def group_by_attr(
    spans: Iterable[Union[Span, Dict[str, Any]]], key: str
) -> Dict[Any, List[Dict[str, Any]]]:
    """Spans bucketed by one attribute's value (lacking spans dropped)."""
    groups: Dict[Any, List[Dict[str, Any]]] = {}
    for record in _as_dicts(spans):
        attributes = record.get("attributes", {})
        if key in attributes:
            groups.setdefault(attributes[key], []).append(record)
    return groups


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (exact order statistic, no interpolation).

    ``q`` is in percent. The nearest-rank definition always returns a
    value that actually occurred — the right semantics for latency
    SLOs, where an interpolated latency nobody experienced would make
    the gate both untight and irreproducible. Empty input returns 0.0.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[max(0, min(len(ordered) - 1, rank - 1))])


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ...}`` via :func:`percentile`."""
    return {f"p{q:g}": percentile(values, q) for q in qs}


def render_trace(
    spans: Iterable[Union[Span, Dict[str, Any]]],
    max_events: int = 3,
) -> str:
    """An indented tree, one line per span, roots in start order.

    Each line shows the span name, wall time, simulated device time
    (when the tracer had a device clock), a short attribute summary,
    and up to ``max_events`` event names.
    """
    records = _as_dicts(spans)
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record.get("parent_id"), []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_wall_s", 0.0))

    lines: List[str] = []

    def walk(record: Dict[str, Any], depth: int) -> None:
        parts = [f"{'  ' * depth}{record['name']}"]
        parts.append(f"{record.get('wall_time_s', 0.0) * 1e3:.2f} ms")
        if record.get("device_time_us") is not None:
            parts.append(f"{record['device_time_us']:.0f} us device")
        attributes = record.get("attributes", {})
        summary = ", ".join(
            f"{key}={attributes[key]}"
            for key in _SUMMARY_KEYS
            if key in attributes
        )
        if summary:
            parts.append(summary)
        if record.get("status") != "ok":
            parts.append(f"status={record.get('status')}")
        events = record.get("events", [])
        if events:
            shown = ", ".join(e["name"] for e in events[:max_events])
            suffix = "..." if len(events) > max_events else ""
            parts.append(f"[{shown}{suffix}]")
        lines.append("  ".join(parts))
        for child in children.get(record["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
