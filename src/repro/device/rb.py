"""Standard and interleaved randomized benchmarking (paper Section II-D).

The paper attributes vendors' calibration numbers to randomized
benchmarking: "long sequences of random gates chosen from the Clifford
group" whose decay yields the *average* gate fidelity. This module
implements the textbook protocol on the simulated device:

* **Standard RB** on a link: ``m`` uniformly random two-qubit Cliffords
  (from the fully enumerated 11,520-element group), a single recovery
  Clifford computed by tableau inversion, survival of |00> fit to
  ``A * alpha^m + B``.
* **Interleaved RB** of one native pulse: the same sequences with the
  pulse under test inserted after every random Clifford. The ratio of
  decays isolates the pulse's own fidelity, cancelling the dressing
  Cliffords' error — this is how a vendor benchmarks CZ vs XY vs CPHASE
  separately.

All dressing Cliffords are compiled to the device's native gates (the
entangling parts through a configurable dressing native). Interleaved
pulses are the Clifford representatives of each family (CZ, XY(pi),
CPHASE(pi)) so the recovery computation stays in the stabilizer
formalism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import DeviceError
from ..exec import Job, get_executor
from ..sim.clifford_group import CliffordElement, clifford_group, tableau_key
from ..sim.stabilizer import StabilizerTableau
from .device import RigettiAspenDevice
from .native_gates import cnot_decomposition, hadamard_native
from .topology import Link, make_link

__all__ = [
    "RbResult",
    "standard_rb",
    "interleaved_rb_fidelity",
]

#: The Clifford pulse each native family is benchmarked with, as
#: (device gate, clifford-group vocabulary word).
_INTERLEAVED_PULSE: Dict[str, Tuple[Gate, Tuple[str, Tuple[int, ...]]]] = {}


def _interleaved_pulse(gate_name: str, qubit_a: int, qubit_b: int) -> Gate:
    if gate_name == "cz":
        return Gate("cz", (qubit_a, qubit_b))
    if gate_name == "xy":
        return Gate("xy", (qubit_a, qubit_b), (math.pi,))
    if gate_name == "cphase":
        return Gate("cphase", (qubit_a, qubit_b), (math.pi,))
    raise DeviceError(f"unknown native gate {gate_name!r}")


def _pulse_vocabulary_word(gate_name: str) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """The interleaved pulse in the Clifford group's gate vocabulary."""
    if gate_name == "cz":
        return (("cz", (0, 1)),)
    if gate_name == "xy":
        return (("iswap", (0, 1)),)
    if gate_name == "cphase":
        return (("cz", (0, 1)),)  # CPHASE(pi) == CZ as a Clifford action
    raise DeviceError(f"unknown native gate {gate_name!r}")


def _nativize_clifford_word(
    word, qubit_a: int, qubit_b: int, dressing_native: str
) -> List[Gate]:
    """Compile a Clifford gate word to device-native gates on a link."""
    qubits = (qubit_a, qubit_b)
    gates: List[Gate] = []
    for name, local in word:
        targets = tuple(qubits[q] for q in local)
        if name == "h":
            gates.extend(hadamard_native(targets[0]))
        elif name == "s":
            gates.append(Gate("rz", targets, (math.pi / 2,)))
        elif name == "sdg":
            gates.append(Gate("rz", targets, (-math.pi / 2,)))
        elif name == "x":
            gates.append(Gate("rx", targets, (math.pi,)))
        elif name == "y":
            gates.append(Gate("rx", targets, (math.pi,)))
            gates.append(Gate("rz", targets, (math.pi,)))
        elif name == "z":
            gates.append(Gate("rz", targets, (math.pi,)))
        elif name == "cnot":
            gates.extend(
                cnot_decomposition(dressing_native, targets[0], targets[1])
            )
        elif name == "cz":
            gates.append(Gate("cz", targets))
        else:  # pragma: no cover - vocabulary is closed
            raise DeviceError(f"no nativization for RB gate {name!r}")
    return gates


def _rb_circuit(
    link: Link,
    depth: int,
    rng: np.random.Generator,
    interleave: Optional[str],
    dressing_native: str,
) -> QuantumCircuit:
    """One RB sequence: random Cliffords (+ interleaved pulse) + recovery."""
    group = clifford_group(2)
    qubit_a, qubit_b = link
    circuit = QuantumCircuit(
        max(link) + 1,
        name=f"rb_{interleave or 'std'}_d{depth}",
    )
    composed_word: Tuple = ()
    for _ in range(depth):
        element = group.sample(rng)
        for gate in _nativize_clifford_word(
            element.word, qubit_a, qubit_b, dressing_native
        ):
            circuit.append(gate)
        composed_word = composed_word + element.word
        if interleave is not None:
            circuit.append(_interleaved_pulse(interleave, qubit_a, qubit_b))
            composed_word = composed_word + _pulse_vocabulary_word(interleave)
    recovery = group.inverse(group.key_of_word(composed_word))
    for gate in _nativize_clifford_word(
        recovery.word, qubit_a, qubit_b, dressing_native
    ):
        circuit.append(gate)
    circuit.measure(qubit_a)
    circuit.measure(qubit_b)
    return circuit


def _fit_decay(
    depths: Sequence[int], survivals: Sequence[float]
) -> Tuple[float, float, float]:
    """Fit ``A * alpha^m + B``; returns (A, alpha, B)."""

    def model(m, amplitude, alpha, floor):
        return amplitude * alpha**m + floor

    import warnings

    try:
        with warnings.catch_warnings():
            # Noise-free decays fit exactly; the singular covariance is
            # expected and not actionable.
            warnings.simplefilter("ignore")
            return _run_fit(model, depths, survivals)
    except RuntimeError:
        # Degenerate data: fall back to a two-point estimate.
        alpha = max(
            1e-3,
            min(
                1.0,
                (survivals[-1] - 0.25)
                / max(survivals[0] - 0.25, 1e-6),
            ),
        ) ** (1.0 / max(depths[-1] - depths[0], 1))
        return 0.75, float(alpha), 0.25


def _run_fit(model, depths, survivals):
    popt, _ = curve_fit(
        model,
        np.asarray(depths, dtype=float),
        np.asarray(survivals, dtype=float),
        p0=(0.7, 0.95, 0.25),
        bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 0.6]),
        maxfev=10_000,
    )
    return float(popt[0]), float(popt[1]), float(popt[2])


@dataclass(frozen=True)
class RbResult:
    """Outcome of one RB experiment on one link.

    Attributes:
        link: The benchmarked link.
        depths: Clifford sequence lengths used.
        survivals: Mean |00> survival per depth.
        alpha: Fitted per-Clifford depolarizing parameter.
        clifford_fidelity: Average fidelity per dressing Clifford,
            ``1 - (1 - alpha) * (d - 1) / d`` with ``d = 4``.
    """

    link: Link
    depths: Tuple[int, ...]
    survivals: Tuple[float, ...]
    alpha: float
    clifford_fidelity: float


def standard_rb(
    device: RigettiAspenDevice,
    link: Link,
    depths: Sequence[int] = (1, 2, 4, 8),
    shots: int = 200,
    sequences_per_depth: int = 3,
    dressing_native: str = "cz",
    rng: Optional[np.random.Generator] = None,
) -> RbResult:
    """Run standard two-qubit RB on a link; returns the fitted decay."""
    rng = rng if rng is not None else np.random.default_rng()
    link = make_link(*link)
    executor = get_executor(device)
    survivals: List[float] = []
    for depth in depths:
        total = 0.0
        for _ in range(sequences_per_depth):
            circuit = _rb_circuit(link, depth, rng, None, dressing_native)
            result = executor.submit(Job(circuit, shots, tag="rb"))
            total += result.counts.get("00", 0) / shots
        survivals.append(total / sequences_per_depth)
    _, alpha, _ = _fit_decay(depths, survivals)
    fidelity = 1.0 - (1.0 - alpha) * 3.0 / 4.0
    return RbResult(
        link=link,
        depths=tuple(depths),
        survivals=tuple(survivals),
        alpha=alpha,
        clifford_fidelity=fidelity,
    )


def interleaved_rb_fidelity(
    device: RigettiAspenDevice,
    link: Link,
    gate_name: str,
    depths: Sequence[int] = (1, 2, 4, 8),
    shots: int = 200,
    sequences_per_depth: int = 3,
    dressing_native: str = "cz",
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Estimate one native pulse's average fidelity via interleaved RB.

    Runs the standard and interleaved decays with shared settings and
    applies the Magesan ratio estimator:
    ``F = 1 - (1 - alpha_int / alpha_std) * (d - 1) / d``.

    The estimate carries the protocol's real systematic and statistical
    error — which is the point: this is the imperfect number the
    noise-adaptive baseline trusts.
    """
    rng = rng if rng is not None else np.random.default_rng()
    link = make_link(*link)
    standard = standard_rb(
        device, link, depths, shots, sequences_per_depth,
        dressing_native, rng,
    )
    executor = get_executor(device)
    survivals: List[float] = []
    for depth in depths:
        total = 0.0
        for _ in range(sequences_per_depth):
            circuit = _rb_circuit(link, depth, rng, gate_name, dressing_native)
            result = executor.submit(Job(circuit, shots, tag="rb"))
            total += result.counts.get("00", 0) / shots
        survivals.append(total / sequences_per_depth)
    _, alpha_int, _ = _fit_decay(depths, survivals)
    alpha_std = max(standard.alpha, 1e-6)
    ratio = min(1.0, alpha_int / alpha_std)
    return float(1.0 - (1.0 - ratio) * 3.0 / 4.0)
