"""The simulated Rigetti Aspen device: executor, clock, and drift.

This is the hardware substitute documented in DESIGN.md §2. It accepts
*native* circuits addressed to physical qubit ids, applies per-link,
per-gate, per-pulse noise (coherent over-rotation + parasitic ZZ +
depolarizing + T1/T2 + readout confusion), returns shot counts, and
advances a simulated wall clock so every noise parameter drifts between
runs exactly like the paper's Aspen machines drift between (and within)
calibration windows.

Only the qubits a circuit touches are simulated (noise is local), so a
38-qubit device runs 2-5 qubit benchmarks through the exact
density-matrix backend.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import circuit_moments
from ..circuit.gates import Gate
from ..exceptions import DeviceError
from ..linalg import channel_average_fidelity
from ..sim.channel_cache import ChannelCache
from ..sim.channels import (
    KrausChannel,
    ReadoutError,
    Superoperator,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
    depolarizing_channel,
    unitary_channel,
)
from ..exceptions import SimulationError
from ..sim.circuit_compiler import circuit_fingerprint
from ..sim.density_matrix import DensityMatrixSimulator, _apply_readout_confusion
from ..sim.sampler import Counts, sample_distribution
from ..sim.sim_cache import SimulationCache
from ..sim.stabilizer import StabilizerSimulator
from .native_gates import (
    DEFAULT_PULSE_DURATIONS_NS,
    NativeGateSet,
    RIGETTI_NATIVE_GATES,
)
from .noise_parameters import (
    QubitNoiseParameters,
    TwoQubitGateNoiseParameters,
    coherent_error_unitary,
    single_qubit_coherent_error,
)
from .topology import Link, Topology, make_link

__all__ = ["RigettiAspenDevice", "ExecutionRecord"]

#: Per-shot overhead (active reset + binning), microseconds.
_SHOT_OVERHEAD_US = 10.0
#: Fixed per-job overhead (load, arm, readout pipeline), microseconds.
_JOB_OVERHEAD_US = 50_000.0

_NS_PER_US = 1000.0

#: Clifford fast path: largest coherent error angle (radians) the
#: perturbative noise treatment will absorb. Coherent rotations beyond
#: this are state-dependent in a way the white-noise mix cannot bound,
#: so the circuit falls back to the dense engine. Realistic calibrated
#: profiles (DEFAULT_PROFILE draws ~0.1 rad link errors) always exceed
#: it — the fast path engages only on clean or near-Clifford physics.
_CLIFFORD_MAX_COHERENT = 0.02
#: Entry cap for the per-epoch Clifford distribution memo.
_CLIFFORD_MEMO_ENTRIES = 4096
#: Sentinel distinguishing "not memoized" from a memoized fallback
#: (``None`` is a legitimate memo value meaning "took the dense path").
_CLIFFORD_MEMO_MISS = object()


@dataclass(frozen=True)
class ExecutionRecord:
    """Audit entry for one device job, kept for experiment reporting.

    Attributes:
        circuit_name: Name of the executed circuit (candidates carry
            their probe suffix, so logs identify which sequence ran).
        shots: Shots sampled.
        started_at_us: Device clock when the job started.
        duration_us: Simulated wall time the job occupied the device.
        qubits: Physical qubits the job touched.
        seed: Sampling seed the submitter supplied (``None`` means the
            device's own stream was used) — lets the audit trail line up
            with executor job records for exact replay.
        job_id: Executor-assigned job identifier ("" for direct runs).
        tag: Workload phase ("probe", "final", "calibration", ...).
    """

    circuit_name: str
    shots: int
    started_at_us: float
    duration_us: float
    qubits: Tuple[int, ...]
    seed: Optional[int] = None
    job_id: str = ""
    tag: str = ""


class RigettiAspenDevice:
    """A simulated multi-native-gate superconducting device.

    Args:
        topology: Active qubits and links.
        qubit_params: Physics per physical qubit (all active qubits
            required).
        gate_params: Physics per (link, native gate name). A missing
            entry means that link does not support that native gate —
            real Aspen chips have such links (paper Section III-A).
        native_gates: The instruction set accepted by :meth:`run`.
        seed: Seed for the device's internal randomness (drift and
            default shot sampling).
        idle_noise: Model T1/T2 decay on qubits that sit idle while
            other qubits are gated (moment-scheduled). Off by default:
            the paper's mechanisms are two-qubit gate errors; idle decay
            is the ADAPT paper's territory and is provided as an
            extension (see ``tests/test_idle_noise.py``).
        crosstalk_zz: Coherent ZZ phase (radians per entangling pulse)
            accumulated between each pulsed qubit and its *spectator*
            topology neighbours inside the simulated register — the
            frequency-crowding crosstalk the paper cites as a motivation
            for richer native gate sets (Section II-B). Extension; 0
            disables it (default).
        channel_cache: Memoize noise-channel construction and fuse each
            gate's ideal unitary plus its whole noise tail into one
            cached superoperator (applied as a single contraction). The
            cache is keyed on the current noise-parameter values and
            cleared whenever :meth:`advance_time` drifts them (tracked
            by :attr:`drift_epoch`), so it is exact. On by default;
            disable to run the reference per-Kraus-operator path.
        sim_cache: Enable the circuit-level simulation cache hierarchy
            (:class:`~repro.sim.sim_cache.SimulationCache`): lowering +
            layer fusion, prefix-state memoization, and exact-noisy-
            distribution caching, all invalidated on every
            ``drift_epoch`` bump. Requires ``channel_cache`` (the
            lowering path goes through the fused operation compiler);
            on by default, disable for A/B runs against the uncached
            simulation path (``--no-sim-cache`` in the CLI).
        batched_sim: Enable the batched candidate engine: batch entry
            points (:meth:`noisy_distribution_batch`) stack candidates
            sharing a lowered suffix onto a leading candidate axis and
            contract the shared suffix once
            (:mod:`repro.sim.batched`), after deduplicating identical
            circuits within the batch. Requires ``sim_cache``;
            bit-identical to sequential evaluation, on by default
            (``--no-batched-sim`` for A/B runs).
        clifford_fast_path: Route circuits that are gate-wise Clifford
            through the stabilizer tableau simulator with a
            perturbative (white-noise) treatment of the stochastic
            error budget, falling back to the dense engine whenever any
            coherent error angle exceeds ``_CLIFFORD_MAX_COHERENT`` or
            any gate is non-Clifford. Exact when the noise budget is
            zero; approximate otherwise — off by default because it can
            change counts (``--clifford-fast-path`` opts in).
    """

    def __init__(
        self,
        topology: Topology,
        qubit_params: Dict[int, QubitNoiseParameters],
        gate_params: Dict[Tuple[Link, str], TwoQubitGateNoiseParameters],
        native_gates: NativeGateSet = RIGETTI_NATIVE_GATES,
        seed: int = 0,
        idle_noise: bool = False,
        crosstalk_zz: float = 0.0,
        channel_cache: bool = True,
        sim_cache: bool = True,
        batched_sim: bool = True,
        clifford_fast_path: bool = False,
    ) -> None:
        missing = [q for q in topology.qubits if q not in qubit_params]
        if missing:
            raise DeviceError(f"missing qubit parameters for {missing}")
        for (link, gate_name) in gate_params:
            if link != make_link(*link):
                raise DeviceError(f"gate_params link {link} not canonical")
            if gate_name not in native_gates.two_qubit:
                raise DeviceError(f"unknown native gate {gate_name!r}")
        self.topology = topology
        self.qubit_params = qubit_params
        self.gate_params = gate_params
        self.native_gates = native_gates
        self.idle_noise = idle_noise
        self.crosstalk_zz = float(crosstalk_zz)
        self.clock_us = 0.0
        self.execution_log: List[ExecutionRecord] = []
        #: Counts how many times drift has moved the noise parameters;
        #: the channel cache is valid only within one epoch.
        self.drift_epoch = 0
        self.channel_cache: Optional[ChannelCache] = (
            ChannelCache() if channel_cache else None
        )
        self.sim_cache: Optional[SimulationCache] = (
            SimulationCache() if (sim_cache and channel_cache) else None
        )
        self.batched_sim = bool(batched_sim)
        self.clifford_fast_path = bool(clifford_fast_path)
        #: Distributions served by the stabilizer fast path (memo
        #: hits included) / eligible attempts that fell back dense.
        self.clifford_fast_hits = 0
        self.clifford_fallbacks = 0
        # Per-epoch memo: key -> distribution (or None for a remembered
        # fallback, so repeated non-Clifford probes skip the re-check).
        self._clifford_memo: Dict[Tuple, Optional[Dict[str, float]]] = {}
        self._drift_rng = np.random.default_rng(seed)
        self._sample_rng = np.random.default_rng(seed + 1)
        # (epoch, digest) memo for parameter_fingerprint().
        self._param_fingerprint: Optional[Tuple[int, bytes]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.topology.name

    @property
    def sample_rng(self) -> np.random.Generator:
        """The device's own shot-sampling stream.

        This is the generator an unseeded ``run`` call draws from;
        backends that sample snapshot distributions themselves (the
        parallel batch paths) must consume it for ``seed=None`` jobs so
        their counts match a direct unseeded device run.
        """
        return self._sample_rng

    def supported_gates(self, qubit_a: int, qubit_b: int) -> Tuple[str, ...]:
        """Native two-qubit gates available on a link (canonical order)."""
        link = make_link(qubit_a, qubit_b)
        return tuple(
            g
            for g in self.native_gates.two_qubit
            if (link, g) in self.gate_params
        )

    def links_supporting(self, gate_name: str) -> List[Link]:
        return sorted(
            link for (link, g) in self.gate_params if g == gate_name
        )

    # ------------------------------------------------------------------
    # Time and drift
    # ------------------------------------------------------------------
    def advance_time(self, dt_us: float) -> None:
        """Advance the wall clock, drifting every noise parameter.

        Every nonzero advance bumps :attr:`drift_epoch` and invalidates
        the channel cache: the cached operators encode the pre-drift
        parameter values and must be rebuilt from the new ones.
        """
        if dt_us < 0:
            raise DeviceError("cannot advance time backwards")
        if dt_us == 0:
            return
        self.clock_us += dt_us
        for params in self.qubit_params.values():
            for value in params.drifting_values():
                value.advance(dt_us, self._drift_rng)
        for params in self.gate_params.values():
            for value in params.drifting_values():
                value.advance(dt_us, self._drift_rng)
        self.drift_epoch += 1
        if self.channel_cache is not None:
            self.channel_cache.invalidate(self.drift_epoch)
        if self.sim_cache is not None:
            self.sim_cache.invalidate(self.drift_epoch)
        self._clifford_memo.clear()

    # ------------------------------------------------------------------
    # Parameter-state export (epoch-delta sync for pool workers)
    # ------------------------------------------------------------------
    def parameter_state(self) -> Dict[Tuple, float]:
        """Every drifting parameter's raw process value, flat-keyed.

        Keys are stable across device replicas built from the same
        construction (``("q", qubit, i)`` for the i-th drifting value of
        a qubit, ``("g", link, gate, i)`` for a two-qubit gate), so a
        worker holding a pickled copy of this device can apply a delta
        of these entries and land on bit-identical physics. Values are
        the *raw* OU process values (pre-clip): shipping them preserves
        the exact ``current`` reads on the far side.
        """
        state: Dict[Tuple, float] = {}
        for qubit in sorted(self.qubit_params):
            values = self.qubit_params[qubit].drifting_values()
            for index, value in enumerate(values):
                state[("q", qubit, index)] = float(value.process.value)
        for key in sorted(self.gate_params):
            link, gate_name = key
            values = self.gate_params[key].drifting_values()
            for index, value in enumerate(values):
                state[("g", link, gate_name, index)] = float(
                    value.process.value
                )
        return state

    def parameter_fingerprint(self) -> bytes:
        """A digest of everything that determines this device's physics.

        Two devices with equal fingerprints produce bit-identical exact
        output distributions for the same circuit: the digest covers the
        topology name, the physics configuration flags, every drifting
        parameter's raw process value, every pulse duration, and the
        drift epoch. This is the cross-request probe-dedup key — a
        shared distribution store may only serve one request's cached
        distribution to another when their devices' fingerprints match.

        Memoized per epoch (``advance_time`` and ``apply_parameter_state``
        drop the memo), so the per-job cost after the first call within
        an epoch is one tuple compare.
        """
        memo = getattr(self, "_param_fingerprint", None)
        if memo is not None and memo[0] == self.drift_epoch:
            return memo[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            repr(
                (
                    self.name,
                    self.idle_noise,
                    self.crosstalk_zz,
                    self.drift_epoch,
                )
            ).encode()
        )
        for key, value in self.parameter_state().items():
            digest.update(repr((key, value)).encode())
        for qubit in sorted(self.qubit_params):
            digest.update(
                repr(
                    (qubit, self.qubit_params[qubit].rx_duration_ns)
                ).encode()
            )
        for key in sorted(self.gate_params):
            digest.update(
                repr((key, self.gate_params[key].duration_ns)).encode()
            )
        fingerprint = digest.digest()
        self._param_fingerprint = (self.drift_epoch, fingerprint)
        return fingerprint

    def parameter_delta(
        self, since: Dict[Tuple, float]
    ) -> Dict[Tuple, float]:
        """Entries of :meth:`parameter_state` that differ from *since*.

        Non-drifting parameters (``DriftingValue.fixed``, zero
        stationary std) never move, so the delta a drift epoch produces
        is exactly the set of parameters whose processes stepped —
        what a pool ships to workers instead of re-pickling the device.
        """
        return {
            key: value
            for key, value in self.parameter_state().items()
            if since.get(key) != value
        }

    def apply_parameter_state(
        self, epoch: int, values: Dict[Tuple, float]
    ) -> None:
        """Install shipped parameter values and adopt a drift epoch.

        The worker-side half of epoch-delta synchronization: writes each
        raw process value back into its :class:`~repro.device.drift.
        DriftingValue` and, when the epoch moved, invalidates the channel
        and simulation caches exactly as :meth:`advance_time` does in the
        parent — no cache entry ever outlives the parameters it encodes,
        on either side of the process boundary.
        """
        for key, value in values.items():
            self._drifting_value(key).process.value = float(value)
        self._param_fingerprint = None
        if epoch != self.drift_epoch:
            self.drift_epoch = epoch
            if self.channel_cache is not None:
                self.channel_cache.invalidate(epoch)
            if self.sim_cache is not None:
                self.sim_cache.invalidate(epoch)
            self._clifford_memo.clear()

    def _drifting_value(self, key: Tuple):
        if key[0] == "q":
            _, qubit, index = key
            return self.qubit_params[qubit].drifting_values()[index]
        if key[0] == "g":
            _, link, gate_name, index = key
            return self.gate_params[(link, gate_name)].drifting_values()[
                index
            ]
        raise DeviceError(f"unknown parameter key {key!r}")

    # ------------------------------------------------------------------
    # Pickling (what crosses the process boundary to pool workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle without cache contents.

        The channel and simulation caches are pure memo tables — every
        entry is reconstructible from the (pickled) noise parameters —
        and their payloads dwarf the rest of the device (fused
        superoperators, density-matrix snapshots up to the prefix byte
        budget). A worker replica starts with fresh, empty caches of the
        same configuration and warms its own.
        """
        state = dict(self.__dict__)
        cache = state["channel_cache"]
        if cache is not None:
            fresh = ChannelCache(cache._max_entries)
            fresh.epoch = self.drift_epoch
            state["channel_cache"] = fresh
        sim = state["sim_cache"]
        if sim is not None:
            fresh_sim = SimulationCache(
                prefix_bytes=sim.prefix.max_bytes,
                max_distributions=sim.max_distributions,
                max_lowered=sim.max_lowered,
                fuse=sim.fuse,
            )
            fresh_sim.epoch = self.drift_epoch
            state["sim_cache"] = fresh_sim
        state["_clifford_memo"] = {}
        return state

    def circuit_duration_us(self, circuit: QuantumCircuit) -> float:
        """Critical-path duration of one shot of a native circuit."""
        total_ns = 0.0
        for moment in circuit_moments(circuit):
            total_ns += max(
                (self._gate_duration_ns(gate) for gate in moment.gates),
                default=0.0,
            )
        return total_ns / _NS_PER_US

    def _gate_duration_ns(self, gate: Gate) -> float:
        if gate.is_barrier:
            return 0.0
        if gate.is_measurement:
            return DEFAULT_PULSE_DURATIONS_NS["measure"]
        if gate.num_qubits == 2:
            link = make_link(*gate.qubits)
            params = self.gate_params.get((link, gate.name))
            if params is not None:
                return params.duration_ns
            return DEFAULT_PULSE_DURATIONS_NS.get(gate.name, 100.0)
        if gate.name == "rx":
            return self.qubit_params[gate.qubits[0]].rx_duration_ns
        return DEFAULT_PULSE_DURATIONS_NS.get(gate.name, 0.0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: Optional[int] = None,
        job_id: str = "",
        tag: str = "",
    ) -> Counts:
        """Execute a native circuit on physical qubits; returns counts.

        The circuit must address active physical qubit ids, use only the
        device's native gate set, place two-qubit gates on active links
        that support them, and (like real hardware) explicitly measure
        the qubits it wants read out.

        Each call advances the device clock by the job's wall time, so
        back-to-back runs observe drifted noise — this is what makes the
        ANGEL probing loop live in the same noise environment as the
        final program execution. ``job_id``/``tag`` are carried into the
        :class:`ExecutionRecord` so executor-submitted jobs line up with
        the device audit trail.
        """
        if shots < 1:
            raise DeviceError("shots must be positive")
        self._validate(circuit)
        used = self._used_qubits(circuit)
        compact, local_of = self._compact_circuit(circuit, used)
        if self.idle_noise:
            compact = self._with_idle_markers(compact)

        rng = (
            np.random.default_rng(seed)
            if seed is not None
            else self._sample_rng
        )
        if self.sim_cache is not None:
            # Cached pipeline: exact distribution through the hierarchy
            # (lowering + prefix replay + distribution memo), then draw
            # shots. sample_distribution matches simulator.sample's
            # sampling semantics exactly (sorted keys, normalized
            # probabilities, one rng.choice), so the two paths consume
            # the rng stream identically.
            distribution = self._exact_distribution(compact, used)
            counts = sample_distribution(distribution, shots, rng)
        else:
            simulator = DensityMatrixSimulator(
                self._noise_callback_factory(used),
                operation_compiler=self._operation_compiler_factory(used),
            )
            readout = [
                self.qubit_params[phys].readout_error() for phys in used
            ]
            counts = simulator.sample(
                compact, shots, rng, readout_errors=readout
            )
        self.log_execution(
            circuit, shots, seed=seed, job_id=job_id, tag=tag, qubits=used
        )
        return counts

    def log_execution(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: Optional[int] = None,
        job_id: str = "",
        tag: str = "",
        qubits: Optional[List[int]] = None,
    ) -> ExecutionRecord:
        """Account one executed job: audit record plus clock advance.

        Factored out of :meth:`run` so the execution service can account
        batch jobs whose distributions were simulated against a shared
        parameter snapshot — the accounting (record order, durations,
        drift advance sequence) stays identical to sequential execution.
        """
        duration = (
            _JOB_OVERHEAD_US
            + shots * (self.circuit_duration_us(circuit) + _SHOT_OVERHEAD_US)
        )
        record = ExecutionRecord(
            circuit_name=circuit.name,
            shots=shots,
            started_at_us=self.clock_us,
            duration_us=duration,
            qubits=tuple(qubits if qubits is not None else self._used_qubits(circuit)),
            seed=seed,
            job_id=job_id,
            tag=tag,
        )
        self.execution_log.append(record)
        self.advance_time(duration)
        return record

    def _validate(self, circuit: QuantumCircuit) -> None:
        if not circuit.has_measurements:
            raise DeviceError(
                f"circuit {circuit.name!r} has no measurements; hardware "
                "returns only measured bits"
            )
        active = set(self.topology.qubits)
        for gate in circuit:
            if gate.is_barrier:
                continue
            for qubit in gate.qubits:
                if qubit not in active:
                    raise DeviceError(
                        f"{gate} uses inactive/unknown qubit {qubit}"
                    )
            if gate.is_measurement:
                continue
            if not self.native_gates.is_native(gate):
                raise DeviceError(
                    f"{gate} is not native to {self.native_gates.name}"
                )
            if gate.num_qubits == 2:
                link = make_link(*gate.qubits)
                if not self.topology.has_link(*link):
                    raise DeviceError(f"{gate} is not on a device link")
                if (link, gate.name) not in self.gate_params:
                    raise DeviceError(
                        f"link {link} does not support native gate "
                        f"{gate.name!r}"
                    )

    @staticmethod
    def _used_qubits(circuit: QuantumCircuit) -> List[int]:
        used: Set[int] = set()
        for gate in circuit:
            used.update(gate.qubits)
        return sorted(used)

    @staticmethod
    def _compact_circuit(
        circuit: QuantumCircuit, used: List[int]
    ) -> Tuple[QuantumCircuit, Dict[int, int]]:
        """Relabel physical qubits onto a dense 0..k-1 register."""
        local_of = {phys: local for local, phys in enumerate(used)}
        compact = QuantumCircuit(len(used), name=circuit.name)
        for gate in circuit:
            if gate.is_barrier:
                compact.barrier()
            else:
                compact.append(
                    Gate(
                        gate.name,
                        tuple(local_of[q] for q in gate.qubits),
                        gate.params,
                    )
                )
        return compact, local_of

    def _with_idle_markers(self, compact: QuantumCircuit) -> QuantumCircuit:
        """Insert explicit ``idle`` gates per moment on untouched wires.

        Each moment lasts as long as its slowest instruction; every
        compact-register qubit not acted on in that moment receives an
        ``idle(duration)`` marker whose noise hook applies T1/T2 decay.
        """
        marked = QuantumCircuit(compact.num_qubits, name=compact.name)
        for moment in circuit_moments(compact):
            duration = max(
                (self._gate_duration_ns(g) for g in moment.gates),
                default=0.0,
            )
            busy = set(moment.qubits())
            for _, gate in moment.items:
                marked.append(gate)
            if duration <= 0:
                continue
            for qubit in range(compact.num_qubits):
                if qubit not in busy:
                    marked.append(Gate("idle", (qubit,), (duration,)))
        return marked

    def _cached(self, key, factory):
        """Memoize a channel construction if the cache is enabled.

        Keys embed the drifting parameter *values* they were built from,
        so a hit is bit-identical to a fresh construction by design; the
        epoch invalidation in :meth:`advance_time` merely keeps the
        table from accumulating dead pre-drift entries.
        """
        if self.channel_cache is None:
            return factory()
        return self.channel_cache.get(key, factory)

    def _noise_callback_factory(self, used: List[int]):
        """Noise hook for the density-matrix simulator, in local indices."""
        phys_of = dict(enumerate(used))

        def callback(gate: Gate) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
            if gate.name == "rz":
                return []  # virtual frame update: noiseless, zero time
            if gate.name == "idle":
                return self._idle_noise(gate, phys_of)
            if gate.num_qubits == 1:
                return self._single_qubit_noise(gate, phys_of)
            if gate.num_qubits == 2:
                return self._two_qubit_noise(gate, phys_of)
            return []

        return callback

    def _operation_compiler_factory(self, used: List[int]):
        """Fused fast path: one cached superoperator per gate instance.

        Each instruction's ideal unitary and full noise tail (coherent
        error, depolarizing, both qubits' relaxation) collapse into a
        single superoperator, memoized per (gate, physical placement)
        until drift invalidates it. Returns ``None`` when the cache is
        disabled, falling back to the per-Kraus reference path.
        """
        if self.channel_cache is None:
            return None
        cache = self.channel_cache
        phys_of = dict(enumerate(used))

        def compiler(gate: Gate):
            if gate.name == "idle":
                phys = phys_of[gate.qubits[0]]
                duration_us = gate.params[0] / _NS_PER_US
                if duration_us <= 0:
                    return ()
                superop = cache.get(
                    ("fused-idle", phys, gate.params),
                    lambda: self._fused_idle(phys, duration_us),
                )
                return ((superop, gate.qubits),)
            if gate.num_qubits == 1:
                phys = phys_of[gate.qubits[0]]
                superop = cache.get(
                    ("fused-1q", gate.name, gate.params, phys),
                    lambda: self._fused_single(gate, phys),
                )
                return ((superop, gate.qubits),)
            if gate.num_qubits == 2:
                phys_pair = (
                    phys_of[gate.qubits[0]],
                    phys_of[gate.qubits[1]],
                )
                superop = cache.get(
                    ("fused-2q", gate.name, gate.params, phys_pair),
                    lambda: self._fused_two(gate, phys_pair),
                )
                operations = [(superop, gate.qubits)]
                if self.crosstalk_zz:
                    operations.extend(
                        self._crosstalk_superops(gate, phys_of)
                    )
                return tuple(operations)
            return None  # unknown arity: reference path decides

        return compiler

    def _thermal_channel(self, phys: int, duration_us: float) -> KrausChannel:
        """This qubit's relaxation over *duration_us*, at current values."""
        params = self.qubit_params[phys]
        t1 = params.t1_us.current
        t2 = min(params.t2_us.current, 2 * t1)
        return self._cached(
            ("thermal", duration_us, t1, t2),
            lambda: thermal_relaxation_channel(duration_us, t1, t2),
        )

    def _fused_idle(self, phys: int, duration_us: float) -> Superoperator:
        return Superoperator.from_kraus(self._thermal_channel(phys, duration_us))

    def _fused_single(self, gate: Gate, phys: int) -> Superoperator:
        superop = Superoperator.from_unitary(gate.matrix(), gate.name)
        if gate.name == "rz":
            return superop  # virtual frame update: noiseless
        params = self.qubit_params[phys]
        over = params.rx_over_rotation.current
        if abs(over) > 1e-12:
            superop = superop.then(
                Superoperator.from_unitary(
                    single_qubit_coherent_error(over), "rx_coherent"
                )
            )
        depol = params.rx_depolarizing.current
        if depol > 0:
            superop = superop.then(
                Superoperator.from_kraus(depolarizing_channel(depol))
            )
        return superop.then(
            Superoperator.from_kraus(
                self._thermal_channel(phys, params.rx_duration_ns / _NS_PER_US)
            )
        )

    def _fused_two(
        self, gate: Gate, phys_pair: Tuple[int, int]
    ) -> Superoperator:
        link = make_link(*phys_pair)
        params = self.gate_params[(link, gate.name)]
        superop = Superoperator.from_unitary(gate.matrix(), gate.name)
        over = params.over_rotation.current
        zz = params.zz_error.current
        if abs(over) > 1e-12 or abs(zz) > 1e-12:
            superop = superop.then(
                Superoperator.from_unitary(
                    coherent_error_unitary(gate.name, over, zz),
                    f"{gate.name}_coherent",
                )
            )
        depol = params.depolarizing.current
        if depol > 0:
            superop = superop.then(
                Superoperator.from_kraus(
                    two_qubit_depolarizing_channel(depol)
                )
            )
        duration_us = params.duration_ns / _NS_PER_US
        for position, phys in enumerate(phys_pair):
            superop = superop.then(
                Superoperator.from_kraus(
                    self._thermal_channel(phys, duration_us)
                ).embed(position, 2)
            )
        return superop

    def _idle_noise(
        self, gate: Gate, phys_of: Dict[int, int]
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        phys = phys_of[gate.qubits[0]]
        duration_us = gate.params[0] / _NS_PER_US
        if duration_us <= 0:
            return []
        return [(self._thermal_channel(phys, duration_us), gate.qubits)]

    def _single_qubit_noise(
        self, gate: Gate, phys_of: Dict[int, int]
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        phys = phys_of[gate.qubits[0]]
        params = self.qubit_params[phys]
        ops: List[Tuple[KrausChannel, Tuple[int, ...]]] = []
        over = params.rx_over_rotation.current
        if abs(over) > 1e-12:
            ops.append(
                (
                    self._cached(
                        ("rx_coherent", over),
                        lambda: unitary_channel(
                            single_qubit_coherent_error(over), "rx_coherent"
                        ),
                    ),
                    gate.qubits,
                )
            )
        depol = params.rx_depolarizing.current
        if depol > 0:
            ops.append(
                (
                    self._cached(
                        ("depol1", depol),
                        lambda: depolarizing_channel(depol),
                    ),
                    gate.qubits,
                )
            )
        ops.append(
            (
                self._thermal_channel(
                    phys, params.rx_duration_ns / _NS_PER_US
                ),
                gate.qubits,
            )
        )
        return ops

    def _two_qubit_noise(
        self, gate: Gate, phys_of: Dict[int, int]
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        phys_pair = (phys_of[gate.qubits[0]], phys_of[gate.qubits[1]])
        link = make_link(*phys_pair)
        params = self.gate_params[(link, gate.name)]
        ops: List[Tuple[KrausChannel, Tuple[int, ...]]] = []
        over = params.over_rotation.current
        zz = params.zz_error.current
        if abs(over) > 1e-12 or abs(zz) > 1e-12:
            ops.append(
                (
                    self._cached(
                        ("coherent2", gate.name, over, zz),
                        lambda: unitary_channel(
                            coherent_error_unitary(gate.name, over, zz),
                            f"{gate.name}_coherent",
                        ),
                    ),
                    gate.qubits,
                )
            )
        depol = params.depolarizing.current
        if depol > 0:
            ops.append(
                (
                    self._cached(
                        ("depol2", depol),
                        lambda: two_qubit_depolarizing_channel(depol),
                    ),
                    gate.qubits,
                )
            )
        duration_us = params.duration_ns / _NS_PER_US
        for local_qubit, phys in zip(gate.qubits, phys_pair):
            ops.append(
                (self._thermal_channel(phys, duration_us), (local_qubit,))
            )
        if self.crosstalk_zz:
            ops.extend(self._crosstalk_ops(gate, phys_of))
        return ops

    def _crosstalk_unitary(self) -> np.ndarray:
        """``exp(-i zeta ZZ / 2)`` for the device's spectator coupling."""
        return np.diag(
            np.exp(
                -1j
                * (self.crosstalk_zz / 2.0)
                * np.array([1.0, -1.0, -1.0, 1.0])
            )
        ).astype(complex)

    def _crosstalk_pairs(
        self, gate: Gate, phys_of: Dict[int, int]
    ) -> List[Tuple[int, int]]:
        """(pulsed, spectator) local-index pairs coupled during a pulse."""
        local_of = {phys: local for local, phys in phys_of.items()}
        pairs: List[Tuple[int, int]] = []
        pulsed_local = set(gate.qubits)
        for local_qubit in gate.qubits:
            phys = phys_of[local_qubit]
            for neighbour_phys in self.topology.neighbors(phys):
                spectator = local_of.get(neighbour_phys)
                if spectator is None or spectator in pulsed_local:
                    continue
                pairs.append((local_qubit, spectator))
        return pairs

    def _crosstalk_ops(
        self, gate: Gate, phys_of: Dict[int, int]
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        """Spectator ZZ crosstalk during an entangling pulse.

        Every in-register topology neighbour of a pulsed qubit (that is
        not itself part of the pulse) picks up ``exp(-i zeta ZZ / 2)``
        with the pulsed qubit — the always-on coupling that frequency
        crowding leaves behind.
        """
        channel = self._cached(
            ("xtalk-kraus",),
            lambda: unitary_channel(self._crosstalk_unitary(), "crosstalk_zz"),
        )
        return [
            (channel, pair) for pair in self._crosstalk_pairs(gate, phys_of)
        ]

    def _crosstalk_superops(
        self, gate: Gate, phys_of: Dict[int, int]
    ) -> List[Tuple[Superoperator, Tuple[int, ...]]]:
        superop = self._cached(
            ("xtalk-superop",),
            lambda: Superoperator.from_unitary(
                self._crosstalk_unitary(), "crosstalk_zz"
            ),
        )
        return [
            (superop, pair) for pair in self._crosstalk_pairs(gate, phys_of)
        ]

    def noisy_distribution(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Oracle: the exact noisy output distribution, right now.

        Unlike :meth:`run` this consumes no shots, does not advance the
        clock, and is not logged — it is the experimenter's ground-truth
        view used by characterization studies to separate physics from
        shot noise. Real users of the device cannot call this.
        """
        self._validate(circuit)
        used = self._used_qubits(circuit)
        compact, _ = self._compact_circuit(circuit, used)
        if self.idle_noise:
            compact = self._with_idle_markers(compact)
        return self._exact_distribution(compact, used)

    def noisy_distribution_batch(
        self, circuits: Sequence[QuantumCircuit]
    ) -> List[Dict[str, float]]:
        """Batched oracle: exact distributions for many circuits at the
        current parameter snapshot (no clock advance, no shots).

        The batch entry point of the batched candidate engine: circuits
        are grouped by physical placement, Clifford-eligible ones are
        served by the stabilizer fast path, and each remaining
        placement group goes through
        :meth:`~repro.sim.sim_cache.SimulationCache.distribution_batch`
        — in-batch dedup, then stacked candidate-axis contraction of
        shared suffixes. Results are bit-identical to calling
        :meth:`noisy_distribution` per circuit (the engine's contract);
        with ``batched_sim`` disabled or no sim cache, that is
        literally what happens.
        """
        if not self.batched_sim or self.sim_cache is None or len(circuits) < 2:
            return [self.noisy_distribution(c) for c in circuits]
        results: List[Optional[Dict[str, float]]] = [None] * len(circuits)
        groups: Dict[Tuple[int, ...], List[int]] = {}
        compacts: List[Optional[QuantumCircuit]] = [None] * len(circuits)
        for index, circuit in enumerate(circuits):
            self._validate(circuit)
            used = self._used_qubits(circuit)
            compact, _ = self._compact_circuit(circuit, used)
            if self.idle_noise:
                compact = self._with_idle_markers(compact)
            fast = self._clifford_distribution(compact, used)
            if fast is not None:
                results[index] = fast
                continue
            compacts[index] = compact
            groups.setdefault(tuple(used), []).append(index)
        for placement, indices in groups.items():
            used = list(placement)
            readout = [
                self.qubit_params[phys].readout_error() for phys in used
            ]
            batch = self.sim_cache.distribution_batch(
                [compacts[i] for i in indices],
                readout,
                operation_compiler=self._operation_compiler_factory(used),
                noise_callback=self._noise_callback_factory(used),
                placement=placement,
            )
            for index, distribution in zip(indices, batch):
                results[index] = distribution
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _exact_distribution(
        self, compact: QuantumCircuit, used: List[int]
    ) -> Dict[str, float]:
        """Exact noisy distribution of a compacted circuit, at current
        parameter values — through the simulation cache when enabled.

        The physical placement (``used``) is part of every cache key:
        equal compact circuits on different physical qubits see
        different noise and must never share entries.
        """
        fast = self._clifford_distribution(compact, used)
        if fast is not None:
            return fast
        readout = [self.qubit_params[phys].readout_error() for phys in used]
        if self.sim_cache is not None:
            return self.sim_cache.distribution(
                compact,
                readout,
                operation_compiler=self._operation_compiler_factory(used),
                noise_callback=self._noise_callback_factory(used),
                placement=tuple(used),
            )
        simulator = DensityMatrixSimulator(
            self._noise_callback_factory(used),
            operation_compiler=self._operation_compiler_factory(used),
        )
        return simulator.distribution(compact, readout_errors=readout)

    # ------------------------------------------------------------------
    # Clifford stabilizer fast path
    # ------------------------------------------------------------------
    def _clifford_distribution(
        self, compact: QuantumCircuit, used: List[int]
    ) -> Optional[Dict[str, float]]:
        """Stabilizer-tableau distribution with perturbative noise, or
        ``None`` when the circuit must take the dense path.

        Routing rules: the fast path is attempted only when enabled and
        the device models no idle decay or spectator crosstalk (both
        are structured multi-qubit effects the white-noise treatment
        cannot absorb). A circuit is eligible when every gate is
        Clifford at its exact angle and every coherent error angle at
        the current parameter values is at most
        ``_CLIFFORD_MAX_COHERENT`` radians. The stochastic error budget
        (depolarizing weights, T1/T2 decay over pulse durations, and
        the Pauli-twirled ``sin^2(angle/2)`` weight of the small
        coherent angles) is folded into one survival probability and
        applied as a white-noise mix over the measured register:
        ``P = survival * ideal + (1 - survival) * uniform``, followed by
        the exact readout confusion. With a zero budget the result is
        exact (stabilizer == density matrix, pinned by the differential
        sweep); otherwise it is an approximation bounded by the budget,
        which is why the fast path is opt-in.
        """
        if not self.clifford_fast_path:
            return None
        if self.idle_noise or self.crosstalk_zz:
            return None
        readout = [self.qubit_params[phys].readout_error() for phys in used]
        key = (
            tuple(used),
            circuit_fingerprint(compact),
            tuple(
                None if e is None else (e.p0_given_1, e.p1_given_0)
                for e in readout
            ),
        )
        memo = self._clifford_memo.get(key, _CLIFFORD_MEMO_MISS)
        if memo is not _CLIFFORD_MEMO_MISS:
            if memo is None:
                self.clifford_fallbacks += 1
                return None
            self.clifford_fast_hits += 1
            return dict(memo)
        result = self._clifford_attempt(compact, used, readout)
        if len(self._clifford_memo) >= _CLIFFORD_MEMO_ENTRIES:
            self._clifford_memo.clear()
        self._clifford_memo[key] = result
        if result is None:
            self.clifford_fallbacks += 1
            return None
        self.clifford_fast_hits += 1
        return dict(result)

    def _clifford_attempt(
        self,
        compact: QuantumCircuit,
        used: List[int],
        readout: List[Optional[ReadoutError]],
    ) -> Optional[Dict[str, float]]:
        """One un-memoized fast-path evaluation (see caller for rules)."""
        survival = self._clifford_survival(compact, used)
        if survival is None:
            return None
        try:
            ideal = StabilizerSimulator().distribution(compact)
        except SimulationError:
            return None  # non-Clifford gate or too many random outcomes
        measured = compact.measured_qubits() or tuple(
            range(compact.num_qubits)
        )
        width = len(measured)
        probs = np.full(1 << width, (1.0 - survival) / (1 << width))
        for bits, weight in ideal.items():
            probs[int(bits, 2)] += survival * weight
        probs = _apply_readout_confusion(probs, measured, readout)
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > 1e-14
        }

    def _clifford_survival(
        self, compact: QuantumCircuit, used: List[int]
    ) -> Optional[float]:
        """Probability that no stochastic error fires anywhere in the
        circuit, or ``None`` when a coherent angle is too large for the
        perturbative treatment."""
        phys_of = dict(enumerate(used))
        survival = 1.0
        for gate in compact:
            if gate.is_barrier or gate.is_measurement:
                continue
            if gate.name == "rz":
                continue  # virtual frame update: noiseless
            if gate.num_qubits == 1:
                params = self.qubit_params[phys_of[gate.qubits[0]]]
                angle = params.rx_over_rotation.current
                if abs(angle) > _CLIFFORD_MAX_COHERENT:
                    return None
                survival *= (1.0 - math.sin(angle / 2.0) ** 2)
                survival *= 1.0 - params.rx_depolarizing.current
                survival *= self._thermal_survival(
                    params, params.rx_duration_ns / _NS_PER_US
                )
                continue
            if gate.num_qubits == 2:
                link = make_link(
                    phys_of[gate.qubits[0]], phys_of[gate.qubits[1]]
                )
                params2 = self.gate_params[(link, gate.name)]
                for angle in (
                    params2.over_rotation.current,
                    params2.zz_error.current,
                ):
                    if abs(angle) > _CLIFFORD_MAX_COHERENT:
                        return None
                    survival *= (1.0 - math.sin(angle / 2.0) ** 2)
                survival *= 1.0 - params2.depolarizing.current
                duration_us = params2.duration_ns / _NS_PER_US
                for phys in link:
                    survival *= self._thermal_survival(
                        self.qubit_params[phys], duration_us
                    )
                continue
            return None  # unknown arity: dense path decides
        return max(0.0, min(1.0, survival))

    @staticmethod
    def _thermal_survival(
        params: QubitNoiseParameters, duration_us: float
    ) -> float:
        """Probability a qubit survives *duration_us* with no T1 reset
        and no T2 phase flip (the white-noise weight of relaxation)."""
        t1 = params.t1_us.current
        t2 = min(params.t2_us.current, 2 * t1)
        return math.exp(-duration_us / t1) * math.exp(-duration_us / t2)

    # ------------------------------------------------------------------
    # Ground-truth fidelities (what an oracle — not the vendor — knows)
    # ------------------------------------------------------------------
    def true_pulse_fidelity(self, link: Link, gate_name: str) -> float:
        """Exact average gate fidelity of one entangling pulse, now.

        This composes the pulse's coherent error, depolarizing channel,
        and both qubits' thermal relaxation analytically — the value a
        perfect, instantaneous randomized-benchmarking experiment would
        converge to. The calibration service adds staleness and
        estimation noise on top of this ground truth.
        """
        link = make_link(*link)
        params = self.gate_params.get((link, gate_name))
        if params is None:
            raise DeviceError(f"link {link} lacks gate {gate_name!r}")
        ideal = _pulse_unitary(gate_name)
        error_unitary = coherent_error_unitary(
            gate_name,
            params.over_rotation.current,
            params.zz_error.current,
        )
        kraus = [error_unitary @ ideal]
        depol = params.depolarizing.current
        if depol > 0:
            channel = two_qubit_depolarizing_channel(depol)
            kraus = [k @ base for base in kraus for k in channel.operators]
        duration_us = params.duration_ns / _NS_PER_US
        for position, qubit in enumerate(link):
            qparams = self.qubit_params[qubit]
            thermal = thermal_relaxation_channel(
                duration_us,
                qparams.t1_us.current,
                min(qparams.t2_us.current, 2 * qparams.t1_us.current),
            )
            expanded = [
                _embed_single(op, position) for op in thermal.operators
            ]
            kraus = [k @ base for base in kraus for k in expanded]
        return channel_average_fidelity(ideal, kraus)

    def true_rx_fidelity(self, qubit: int) -> float:
        """Exact average fidelity of one RX(pi/2) pulse on *qubit*, now."""
        params = self.qubit_params[qubit]
        ideal = Gate("rx", (0,), (math.pi / 2,)).matrix()
        kraus = [
            single_qubit_coherent_error(params.rx_over_rotation.current)
            @ ideal
        ]
        depol = params.rx_depolarizing.current
        if depol > 0:
            channel = depolarizing_channel(depol)
            kraus = [k @ base for base in kraus for k in channel.operators]
        thermal = thermal_relaxation_channel(
            params.rx_duration_ns / _NS_PER_US,
            params.t1_us.current,
            min(params.t2_us.current, 2 * params.t1_us.current),
        )
        kraus = [k @ base for base in kraus for k in thermal.operators]
        return channel_average_fidelity(ideal, kraus)


def _pulse_unitary(gate_name: str) -> np.ndarray:
    """The ideal unitary of one entangling pulse as used inside a CNOT."""
    if gate_name == "cz":
        return Gate("cz", (0, 1)).matrix()
    if gate_name == "xy":
        return Gate("xy", (0, 1), (math.pi,)).matrix()
    if gate_name == "cphase":
        return Gate("cphase", (0, 1), (math.pi / 2,)).matrix()
    raise DeviceError(f"unknown native two-qubit gate {gate_name!r}")


def _embed_single(op: np.ndarray, position: int) -> np.ndarray:
    """Embed a 1-qubit Kraus operator into the 2-qubit link space."""
    identity = np.eye(2, dtype=complex)
    if position == 0:
        return np.kron(op, identity)
    return np.kron(identity, op)
