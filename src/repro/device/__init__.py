"""The simulated Rigetti Aspen device stack.

* :mod:`~repro.device.topology` — octagon-lattice connectivity;
* :mod:`~repro.device.native_gates` — native gate sets and the three CNOT
  decompositions (paper Fig. 2);
* :mod:`~repro.device.noise_parameters` / :mod:`~repro.device.drift` —
  per-link drifting physics;
* :mod:`~repro.device.device` — the shot-based executor;
* :mod:`~repro.device.calibration` — vendor-style benchmarking with
  per-gate cadence (the staleness mechanism of paper Fig. 8);
* :mod:`~repro.device.presets` — Aspen-11 / Aspen-M-1 factories.
"""

from .calibration import (
    DEFAULT_REFRESH_PERIOD_US,
    CalibrationData,
    CalibrationRecord,
    CalibrationService,
    mirror_benchmark_fidelity,
)
from .device import ExecutionRecord, RigettiAspenDevice
from .drift import DriftingValue, OrnsteinUhlenbeck
from .native_gates import (
    DEFAULT_PULSE_DURATIONS_NS,
    NATIVE_TWO_QUBIT_GATES,
    RIGETTI_NATIVE_GATES,
    NativeGateSet,
    cnot_decomposition,
    cnot_duration_ns,
    cnot_pulse_count,
    hadamard_native,
    native_two_qubit_gate_instances,
    u3_native,
)
from .noise_parameters import (
    QubitNoiseParameters,
    TwoQubitGateNoiseParameters,
    coherent_error_unitary,
    single_qubit_coherent_error,
)
from .rb import RbResult, interleaved_rb_fidelity, standard_rb
from .presets import (
    DEFAULT_PROFILE,
    NOISELESS_PROFILE,
    NoiseProfile,
    aspen11,
    aspen_m1,
    build_device,
    small_test_device,
)
from .topology import Link, Topology, aspen_topology, linear_topology, make_link

__all__ = [
    "Topology",
    "Link",
    "make_link",
    "aspen_topology",
    "linear_topology",
    "NativeGateSet",
    "RIGETTI_NATIVE_GATES",
    "NATIVE_TWO_QUBIT_GATES",
    "DEFAULT_PULSE_DURATIONS_NS",
    "cnot_decomposition",
    "cnot_pulse_count",
    "cnot_duration_ns",
    "hadamard_native",
    "u3_native",
    "native_two_qubit_gate_instances",
    "QubitNoiseParameters",
    "TwoQubitGateNoiseParameters",
    "coherent_error_unitary",
    "single_qubit_coherent_error",
    "OrnsteinUhlenbeck",
    "DriftingValue",
    "RigettiAspenDevice",
    "ExecutionRecord",
    "CalibrationService",
    "CalibrationData",
    "CalibrationRecord",
    "DEFAULT_REFRESH_PERIOD_US",
    "mirror_benchmark_fidelity",
    "RbResult",
    "standard_rb",
    "interleaved_rb_fidelity",
    "NoiseProfile",
    "DEFAULT_PROFILE",
    "NOISELESS_PROFILE",
    "build_device",
    "aspen11",
    "aspen_m1",
    "small_test_device",
]
