"""Device topologies: the Rigetti Aspen octagon lattice.

Aspen-family chips tile octagonal 8-qubit rings in a grid; adjacent
octagons share two links. Qubit ids follow Rigetti's convention of
``octagon_index * 10 + ring_position`` (ring positions 0-7), which is why
Aspen ids jump by tens (0-7, 10-17, ..., 100-107 on larger chips).

The generator supports dead qubits and disabled links so presets can
match the published device sizes (38 usable qubits on Aspen-11, 103
active links on Aspen-M-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..exceptions import DeviceError

__all__ = ["Link", "Topology", "aspen_topology", "linear_topology"]

#: A device link is an unordered pair of physical qubit ids, stored sorted.
Link = Tuple[int, int]


def make_link(qubit_a: int, qubit_b: int) -> Link:
    """Normalize an unordered qubit pair into a canonical link key."""
    if qubit_a == qubit_b:
        raise DeviceError(f"link endpoints must differ, got {qubit_a}")
    return (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)


@dataclass(frozen=True)
class Topology:
    """An undirected device connectivity graph.

    Attributes:
        name: Device name for reports (e.g. ``"aspen-11"``).
        qubits: Active physical qubit ids, sorted.
        links: Active links as canonical (sorted) pairs, sorted.
    """

    name: str
    qubits: Tuple[int, ...]
    links: Tuple[Link, ...]

    def __post_init__(self) -> None:
        qubit_set = set(self.qubits)
        for link in self.links:
            if link != make_link(*link):
                raise DeviceError(f"link {link} is not canonical")
            if link[0] not in qubit_set or link[1] not in qubit_set:
                raise DeviceError(f"link {link} references unknown qubit")

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def has_link(self, qubit_a: int, qubit_b: int) -> bool:
        return make_link(qubit_a, qubit_b) in set(self.links)

    def neighbors(self, qubit: int) -> List[int]:
        found = []
        for a, b in self.links:
            if a == qubit:
                found.append(b)
            elif b == qubit:
                found.append(a)
        return sorted(found)

    def degree(self, qubit: int) -> int:
        return len(self.neighbors(qubit))

    def graph(self) -> nx.Graph:
        """The topology as a networkx graph (nodes=qubits, edges=links)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.qubits)
        graph.add_edges_from(self.links)
        return graph

    def shortest_path(self, source: int, target: int) -> List[int]:
        """Qubit path between two physical qubits (inclusive)."""
        try:
            return nx.shortest_path(self.graph(), source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise DeviceError(
                f"no path between qubits {source} and {target}"
            ) from exc

    def distance(self, source: int, target: int) -> int:
        return len(self.shortest_path(source, target)) - 1

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph())

    def connected_subgraph_qubits(self, seed_qubit: int, size: int) -> List[int]:
        """A BFS-grown connected region of *size* qubits around a seed."""
        graph = self.graph()
        if seed_qubit not in graph:
            raise DeviceError(f"unknown qubit {seed_qubit}")
        order = list(nx.bfs_tree(graph, seed_qubit))
        if len(order) < size:
            raise DeviceError(
                f"component around {seed_qubit} has only {len(order)} qubits"
            )
        return order[:size]

    def without(
        self,
        dead_qubits: Iterable[int] = (),
        disabled_links: Iterable[Link] = (),
    ) -> "Topology":
        """A copy with the given qubits/links removed."""
        dead = set(dead_qubits)
        disabled = {make_link(*link) for link in disabled_links}
        qubits = tuple(q for q in self.qubits if q not in dead)
        links = tuple(
            link
            for link in self.links
            if link not in disabled and link[0] not in dead and link[1] not in dead
        )
        return Topology(self.name, qubits, links)


def aspen_topology(
    rows: int,
    cols: int,
    name: str = "aspen",
    dead_qubits: Iterable[int] = (),
    disabled_links: Iterable[Link] = (),
) -> Topology:
    """Generate an Aspen-style octagon lattice of *rows* x *cols* octagons.

    Ring positions within octagon ``o`` are ids ``o*10 + p`` for
    ``p in 0..7``, connected in a ring. Between horizontally adjacent
    octagons, positions (1, 2) of the left octagon connect to positions
    (6, 5) of the right one; vertically, positions (0, 7) connect to
    positions (3, 4) of the octagon below — two shared links per adjacent
    pair, as on real Aspen chips.
    """
    if rows < 1 or cols < 1:
        raise DeviceError("need at least one octagon")
    links: Set[Link] = set()
    qubits: List[int] = []

    def octagon_index(row: int, col: int) -> int:
        return row * cols + col

    for row in range(rows):
        for col in range(cols):
            base = octagon_index(row, col) * 10
            ring = [base + p for p in range(8)]
            qubits.extend(ring)
            for p in range(8):
                links.add(make_link(ring[p], ring[(p + 1) % 8]))
            if col + 1 < cols:
                right = octagon_index(row, col + 1) * 10
                links.add(make_link(base + 1, right + 6))
                links.add(make_link(base + 2, right + 5))
            if row + 1 < rows:
                below = octagon_index(row + 1, col) * 10
                links.add(make_link(base + 0, below + 3))
                links.add(make_link(base + 7, below + 4))

    topology = Topology(name, tuple(sorted(qubits)), tuple(sorted(links)))
    if dead_qubits or disabled_links:
        topology = Topology(
            name,
            topology.qubits,
            topology.links,
        ).without(dead_qubits, disabled_links)
    return topology


def linear_topology(num_qubits: int, name: str = "line") -> Topology:
    """A 1-D chain — the minimal topology used throughout the tests."""
    if num_qubits < 2:
        raise DeviceError("linear topology needs at least two qubits")
    qubits = tuple(range(num_qubits))
    links = tuple((i, i + 1) for i in range(num_qubits - 1))
    return Topology(name, qubits, links)
