"""Vendor-style calibration: benchmarking protocols, cadence, staleness.

The paper's critique of noise-adaptive compilation rests on two properties
of real calibration data (Sections II-D.2 and III-B):

1. **It is an average.** Randomized-benchmarking-style protocols report
   the state-averaged gate fidelity, hiding the state-dependent structure
   of coherent errors.
2. **It goes stale.** Gates are re-benchmarked on different cadences
   (CPHASE least often on Aspen-11), so between refreshes the published
   number plateaus while the device drifts (Fig. 8).

:class:`CalibrationService` reproduces both: it periodically measures
per-link, per-gate fidelities — either analytically (ground-truth channel
fidelity plus estimation noise; fast) or by actually running a
mirror-benchmarking protocol on the device (shots, fits, the works) — and
timestamps the records. Consumers (the noise-adaptive baseline, ANGEL's
reference initialization) only ever see the possibly-stale records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CalibrationError, DeviceError
from ..exec import Job, get_executor
from .device import RigettiAspenDevice
from .native_gates import NATIVE_TWO_QUBIT_GATES
from .topology import Link, make_link

__all__ = [
    "CalibrationRecord",
    "CalibrationData",
    "CalibrationService",
    "mirror_benchmark_fidelity",
]

#: Wall time one gate-family calibration sweep costs, microseconds.
_CALIBRATION_SWEEP_US = 5_000_000.0

#: Default refresh cadence per native gate, microseconds. CPHASE is
#: refreshed least often, as the paper reports for Aspen-11.
DEFAULT_REFRESH_PERIOD_US: Dict[str, float] = {
    "xy": 4 * 3_600e6,
    "cz": 4 * 3_600e6,
    "cphase": 24 * 3_600e6,
}


@dataclass(frozen=True)
class CalibrationRecord:
    """One published fidelity number and when it was measured."""

    value: float
    timestamp_us: float

    def age_us(self, now_us: float) -> float:
        return now_us - self.timestamp_us


@dataclass
class CalibrationData:
    """The device page a vendor publishes: per-gate/link/qubit records."""

    two_qubit: Dict[Tuple[Link, str], CalibrationRecord] = field(
        default_factory=dict
    )
    single_qubit: Dict[int, CalibrationRecord] = field(default_factory=dict)
    readout: Dict[int, CalibrationRecord] = field(default_factory=dict)

    def two_qubit_fidelity(self, link: Link, gate_name: str) -> float:
        record = self.two_qubit.get((make_link(*link), gate_name))
        if record is None:
            raise CalibrationError(
                f"no calibration record for {gate_name!r} on link {link}"
            )
        return record.value

    def gates_calibrated_on(self, link: Link) -> List[str]:
        link = make_link(*link)
        return [
            g
            for g in NATIVE_TWO_QUBIT_GATES
            if (link, g) in self.two_qubit
        ]

    def best_native_gate(self, link: Link) -> str:
        """The noise-adaptive choice: highest calibrated fidelity wins.

        Ties break toward the canonical gate order so the baseline policy
        is deterministic.
        """
        link = make_link(*link)
        candidates = self.gates_calibrated_on(link)
        if not candidates:
            raise CalibrationError(f"no calibrated gates on link {link}")
        return max(
            candidates,
            key=lambda g: (
                self.two_qubit[(link, g)].value,
                -NATIVE_TWO_QUBIT_GATES.index(g),
            ),
        )

    def single_qubit_fidelity(self, qubit: int) -> float:
        record = self.single_qubit.get(qubit)
        if record is None:
            raise CalibrationError(f"no 1q calibration for qubit {qubit}")
        return record.value

    def readout_fidelity(self, qubit: int) -> float:
        record = self.readout.get(qubit)
        if record is None:
            raise CalibrationError(f"no readout calibration for qubit {qubit}")
        return record.value

    def snapshot(self) -> "CalibrationData":
        """An immutable-ish copy (records are frozen) for later comparison."""
        return CalibrationData(
            two_qubit=dict(self.two_qubit),
            single_qubit=dict(self.single_qubit),
            readout=dict(self.readout),
        )


def mirror_benchmark_fidelity(
    device: RigettiAspenDevice,
    link: Link,
    gate_name: str,
    depths: Sequence[int] = (1, 2, 4, 8),
    shots: int = 300,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Estimate per-pulse fidelity with a mirror (Loschmidt) benchmark.

    For each depth *m*: apply ``m`` repetitions of [entangling pulse +
    random Pauli dressing], then the exact inverse sequence, and measure
    the survival probability of |00>. Random Pauli layers twirl coherent
    errors toward the incoherent average — the same state-averaging that
    makes vendor numbers blind to the errors' state dependence. Survival
    decays as ``A * f^(2m) + 1/4``; a bounded least-squares fit returns
    the per-pulse fidelity ``f``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    link = make_link(*link)
    qubit_a, qubit_b = link
    survivals: List[float] = []
    executor = get_executor(device)
    for depth in depths:
        circuit = _mirror_circuit(qubit_a, qubit_b, gate_name, depth, rng)
        result = executor.submit(Job(circuit, shots, tag="calibration"))
        survivals.append(result.counts.get("00", 0) / shots)

    def model(m: np.ndarray, amplitude: float, fidelity: float) -> np.ndarray:
        return amplitude * fidelity ** (2 * m) + 0.25

    import warnings

    try:
        with warnings.catch_warnings():
            # Noise-free decays fit exactly; the singular covariance the
            # optimizer then reports is expected and not actionable.
            warnings.simplefilter("ignore")
            popt, _ = curve_fit(
                model,
                np.asarray(depths, dtype=float),
                np.asarray(survivals, dtype=float),
                p0=(0.7, 0.97),
                bounds=([0.0, 0.25], [1.0, 1.0]),
                maxfev=5000,
            )
        fidelity = float(popt[1])
    except RuntimeError:
        # Fit failure (pathologically noisy data): fall back to the
        # single-depth estimator from the shallowest sequence.
        base = max(1e-3, survivals[0] - 0.25) / 0.75
        fidelity = float(min(1.0, base ** (1.0 / (2 * depths[0]))))
    return fidelity


def _mirror_circuit(
    qubit_a: int,
    qubit_b: int,
    gate_name: str,
    depth: int,
    rng: np.random.Generator,
) -> QuantumCircuit:
    """Build one mirror-benchmark sequence in native gates."""
    width = max(qubit_a, qubit_b) + 1
    circuit = QuantumCircuit(width, name=f"mirror_{gate_name}_d{depth}")
    forward: List[Tuple[str, Tuple[int, ...], Tuple[float, ...]]] = []

    def emit(name: str, qubits: Tuple[int, ...], *params: float) -> None:
        circuit.add(name, qubits, *params)
        forward.append((name, qubits, tuple(params)))

    for _ in range(depth):
        if gate_name == "cz":
            emit("cz", (qubit_a, qubit_b))
        elif gate_name == "xy":
            emit("xy", (qubit_a, qubit_b), math.pi)
        elif gate_name == "cphase":
            emit("cphase", (qubit_a, qubit_b), math.pi / 2)
        else:
            raise DeviceError(f"unknown native gate {gate_name!r}")
        for qubit in (qubit_a, qubit_b):
            _emit_random_pauli(emit, qubit, rng)
    # Exact inverse: reverse order, invert each native gate.
    for name, qubits, params in reversed(forward):
        if name in ("rz", "xy", "cphase"):
            circuit.add(name, qubits, *(-p for p in params))
        elif name == "rx":
            circuit.add("rx", qubits, -params[0])
        else:  # cz is self-inverse
            circuit.add(name, qubits)
    circuit.measure(qubit_a)
    circuit.measure(qubit_b)
    return circuit


def _emit_random_pauli(emit, qubit: int, rng: np.random.Generator) -> None:
    """A uniformly random Pauli in native gates (I, X, Y, or Z)."""
    choice = int(rng.integers(4))
    if choice == 1:  # X
        emit("rx", (qubit,), math.pi)
    elif choice == 2:  # Y = X then Z up to phase
        emit("rx", (qubit,), math.pi)
        emit("rz", (qubit,), math.pi)
    elif choice == 3:  # Z (virtual)
        emit("rz", (qubit,), math.pi)


class CalibrationService:
    """Periodic benchmarking of a device, with per-gate cadence.

    Args:
        device: The device to benchmark (shares its clock).
        refresh_period_us: Per-native-gate refresh period; gates absent
            from the mapping use the defaults (CPHASE slowest).
        mode: ``"analytic"`` (ground truth + Gaussian estimation noise;
            fast, the default for experiments), ``"mirror"`` (run mirror
            benchmarking shots on the device), or ``"irb"`` (run full
            interleaved randomized benchmarking — the protocol the
            paper attributes to vendors).
        estimation_noise_std: Std-dev of analytic-mode estimation noise —
            models the finite-shot uncertainty of real benchmarking.
        seed: Seed for estimation noise and mirror sequence sampling.
    """

    def __init__(
        self,
        device: RigettiAspenDevice,
        refresh_period_us: Optional[Dict[str, float]] = None,
        mode: str = "analytic",
        estimation_noise_std: float = 0.0015,
        mirror_shots: int = 300,
        seed: int = 0,
    ) -> None:
        if mode not in ("analytic", "mirror", "irb"):
            raise CalibrationError(f"unknown calibration mode {mode!r}")
        self.device = device
        self.mode = mode
        self.estimation_noise_std = estimation_noise_std
        self.mirror_shots = mirror_shots
        self.refresh_period_us = dict(DEFAULT_REFRESH_PERIOD_US)
        if refresh_period_us:
            self.refresh_period_us.update(refresh_period_us)
        self.data = CalibrationData()
        self._last_calibrated_us: Dict[str, float] = {}
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def calibrate_gate(self, gate_name: str) -> int:
        """Benchmark every link supporting *gate_name*; returns link count.

        Costs simulated wall time, so calibrating itself lets the device
        drift — as on real hardware.
        """
        links = self.device.links_supporting(gate_name)
        for link in links:
            estimate = self._estimate(link, gate_name)
            self.data.two_qubit[(link, gate_name)] = CalibrationRecord(
                value=estimate, timestamp_us=self.device.clock_us
            )
        if self.mode == "analytic":
            self.device.advance_time(_CALIBRATION_SWEEP_US)
        self._last_calibrated_us[gate_name] = self.device.clock_us
        return len(links)

    def _estimate(self, link: Link, gate_name: str) -> float:
        if self.mode == "mirror":
            return mirror_benchmark_fidelity(
                self.device,
                link,
                gate_name,
                shots=self.mirror_shots,
                rng=self._rng,
            )
        if self.mode == "irb":
            from .rb import interleaved_rb_fidelity

            return interleaved_rb_fidelity(
                self.device,
                link,
                gate_name,
                shots=self.mirror_shots,
                rng=self._rng,
            )
        truth = self.device.true_pulse_fidelity(link, gate_name)
        noisy = truth + self.estimation_noise_std * float(
            self._rng.standard_normal()
        )
        return float(min(1.0, max(0.25, noisy)))

    def calibrate_single_qubit(self) -> None:
        for qubit in self.device.topology.qubits:
            truth = self.device.true_rx_fidelity(qubit)
            noisy = truth + 0.3 * self.estimation_noise_std * float(
                self._rng.standard_normal()
            )
            self.data.single_qubit[qubit] = CalibrationRecord(
                value=float(min(1.0, max(0.25, noisy))),
                timestamp_us=self.device.clock_us,
            )

    def calibrate_readout(self) -> None:
        for qubit in self.device.topology.qubits:
            params = self.device.qubit_params[qubit]
            truth = params.readout_error().assignment_fidelity
            noisy = truth + 0.3 * self.estimation_noise_std * float(
                self._rng.standard_normal()
            )
            self.data.readout[qubit] = CalibrationRecord(
                value=float(min(1.0, max(0.5, noisy))),
                timestamp_us=self.device.clock_us,
            )

    def full_calibration(self) -> None:
        """Benchmark everything once (a fresh calibration cycle)."""
        for gate_name in self.device.native_gates.two_qubit:
            self.calibrate_gate(gate_name)
        self.calibrate_single_qubit()
        self.calibrate_readout()

    def maybe_recalibrate(self) -> List[str]:
        """Refresh any gate whose cadence has elapsed; returns refreshed.

        This is the staleness mechanism: between refreshes the published
        records are frozen while the device keeps drifting.
        """
        refreshed: List[str] = []
        now = self.device.clock_us
        for gate_name in self.device.native_gates.two_qubit:
            period = self.refresh_period_us.get(
                gate_name, DEFAULT_REFRESH_PERIOD_US["cz"]
            )
            last = self._last_calibrated_us.get(gate_name)
            if last is None or now - last >= period:
                self.calibrate_gate(gate_name)
                refreshed.append(gate_name)
        return refreshed

    def staleness_us(self, gate_name: str) -> float:
        """Age of the newest record for *gate_name* (inf if never run)."""
        last = self._last_calibrated_us.get(gate_name)
        if last is None:
            return math.inf
        return self.device.clock_us - last
