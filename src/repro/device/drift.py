"""Temporal drift of device parameters (Ornstein–Uhlenbeck processes).

The paper's Section III-B observes that device error rates wander between
calibration cycles while the *reported* values plateau (Fig. 8), and its
Section VI-E shows drift within a single calibration window reshuffling
which native-gate sequence is best (Figs. 21-22). We model every noise
parameter as a mean-reverting OU process advanced by simulated wall-clock
time, using the exact discrete transition

``x(t+dt) = mu + (x(t) - mu) * a + sigma_stat * sqrt(1 - a^2) * N(0,1)``

with ``a = exp(-dt / tau)``, so updates are step-size invariant: advancing
by ``dt`` in one step or many is statistically identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exceptions import DeviceError

__all__ = ["OrnsteinUhlenbeck", "DriftingValue"]


@dataclass
class OrnsteinUhlenbeck:
    """A mean-reverting Gaussian process.

    Attributes:
        mean: Long-run mean the process reverts to.
        stationary_std: Standard deviation of the stationary distribution
            (0 disables drift entirely — the parameter stays at *value*).
        correlation_time: Time constant tau of mean reversion, in the same
            units the caller advances the clock with (microseconds
            throughout this library).
        value: Current value; defaults to the mean.
    """

    mean: float
    stationary_std: float
    correlation_time: float
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.stationary_std < 0:
            raise DeviceError("stationary_std must be non-negative")
        if self.correlation_time <= 0:
            raise DeviceError("correlation_time must be positive")
        if self.value is None:
            self.value = self.mean

    def advance(self, dt: float, rng: np.random.Generator) -> float:
        """Advance the process by *dt* time units; returns the new value."""
        if dt < 0:
            raise DeviceError("cannot advance time backwards")
        if dt == 0 or self.stationary_std == 0:
            return float(self.value)
        decay = math.exp(-dt / self.correlation_time)
        noise_scale = self.stationary_std * math.sqrt(1.0 - decay**2)
        self.value = (
            self.mean
            + (self.value - self.mean) * decay
            + noise_scale * float(rng.standard_normal())
        )
        return float(self.value)

    def equilibrate(self, rng: np.random.Generator) -> float:
        """Jump straight to a stationary-distribution sample."""
        self.value = self.mean + self.stationary_std * float(
            rng.standard_normal()
        )
        return float(self.value)


@dataclass
class DriftingValue:
    """An OU process clipped to a physical range.

    Noise probabilities must stay in ``[low, high]``; rather than letting
    the Gaussian wander out we clip the *observed* value while the
    underlying process keeps its dynamics (standard reflected-read
    treatment — keeps the process ergodic and the clip rare when the
    bounds are a few sigma away).
    """

    process: OrnsteinUhlenbeck
    low: float = 0.0
    high: float = math.inf

    @classmethod
    def fixed(cls, value: float) -> "DriftingValue":
        """A non-drifting constant, for tests and noiseless presets."""
        return cls(
            OrnsteinUhlenbeck(
                mean=value, stationary_std=0.0, correlation_time=1.0
            ),
            low=-math.inf,
            high=math.inf,
        )

    @property
    def current(self) -> float:
        return float(min(self.high, max(self.low, self.process.value)))

    def advance(self, dt: float, rng: np.random.Generator) -> float:
        self.process.advance(dt, rng)
        return self.current

    def equilibrate(self, rng: np.random.Generator) -> float:
        self.process.equilibrate(rng)
        return self.current
