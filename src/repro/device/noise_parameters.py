"""Physical noise parameters of the simulated device.

Each qubit carries relaxation times, readout confusion, and single-qubit
gate error; each (link, native gate) pair carries a per-pulse error
triple: coherent over-rotation of the gate's own generator, parasitic ZZ
phase, and incoherent depolarizing. All scalars are
:class:`~repro.device.drift.DriftingValue` so the device drifts in time.

The coherent terms are the paper's physics: randomized benchmarking
averages them into a single fidelity number, but in a specific circuit
they act on specific states and *interfere across consecutive pulses*,
which is why the calibration-optimal native gate is often not the
application-optimal one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit.gates import cphase_matrix, rx_matrix, xy_matrix
from ..exceptions import DeviceError
from ..linalg import kron_n
from ..sim.channels import ReadoutError
from .drift import DriftingValue
from .native_gates import DEFAULT_PULSE_DURATIONS_NS

__all__ = [
    "QubitNoiseParameters",
    "TwoQubitGateNoiseParameters",
    "coherent_error_unitary",
    "single_qubit_coherent_error",
]

_ZZ_GENERATOR = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


@dataclass
class QubitNoiseParameters:
    """Per-qubit physics: relaxation, readout, single-qubit gate error.

    Attributes:
        t1_us / t2_us: Relaxation/coherence times in microseconds.
        readout_p01: P(read 0 | prepared 1).
        readout_p10: P(read 1 | prepared 0).
        rx_depolarizing: Depolarizing probability per RX pulse.
        rx_over_rotation: Coherent RX angle error per pulse (radians).
        rx_duration_ns: RX pulse duration.
    """

    t1_us: DriftingValue
    t2_us: DriftingValue
    readout_p01: DriftingValue
    readout_p10: DriftingValue
    rx_depolarizing: DriftingValue
    rx_over_rotation: DriftingValue
    rx_duration_ns: float = DEFAULT_PULSE_DURATIONS_NS["rx"]

    def readout_error(self) -> ReadoutError:
        return ReadoutError(
            p0_given_1=min(1.0, max(0.0, self.readout_p01.current)),
            p1_given_0=min(1.0, max(0.0, self.readout_p10.current)),
        )

    def drifting_values(self) -> Tuple[DriftingValue, ...]:
        return (
            self.t1_us,
            self.t2_us,
            self.readout_p01,
            self.readout_p10,
            self.rx_depolarizing,
            self.rx_over_rotation,
        )


@dataclass
class TwoQubitGateNoiseParameters:
    """Per-(link, native gate) physics, charged per entangling pulse.

    Attributes:
        over_rotation: Coherent error angle along the gate's own
            generator (an extra ``CPHASE(eps)`` for cz/cphase pulses, an
            extra ``XY(eps)`` for xy pulses).
        zz_error: Parasitic ZZ phase accumulated during the pulse.
        depolarizing: Two-qubit depolarizing probability per pulse.
        duration_ns: Pulse duration (XY/CPHASE shorter than CZ, but a
            CNOT needs two of them — paper Fig. 2c).
    """

    over_rotation: DriftingValue
    zz_error: DriftingValue
    depolarizing: DriftingValue
    duration_ns: float

    def drifting_values(self) -> Tuple[DriftingValue, ...]:
        return (self.over_rotation, self.zz_error, self.depolarizing)


def coherent_error_unitary(
    gate_name: str, over_rotation: float, zz_error: float
) -> np.ndarray:
    """The coherent error unitary trailing one two-qubit native pulse.

    ``U_err = G(eps) * exp(-i zeta ZZ / 2)`` where ``G`` is the pulse's
    own gate family (the two factors commute for all three Rigetti
    natives, so the order is immaterial).
    """
    zz_phase = _zz_unitary(zz_error)
    if gate_name in ("cz", "cphase"):
        return cphase_matrix(over_rotation) @ zz_phase
    if gate_name == "xy":
        return xy_matrix(over_rotation) @ zz_phase
    raise DeviceError(f"unknown two-qubit native gate {gate_name!r}")


def _zz_unitary(zeta: float) -> np.ndarray:
    if abs(zeta) < 1e-15:
        return np.eye(4, dtype=complex)
    return np.diag(
        np.exp(-1j * (zeta / 2.0) * np.diag(_ZZ_GENERATOR))
    ).astype(complex)


def single_qubit_coherent_error(over_rotation: float) -> np.ndarray:
    """Coherent RX over-rotation error for single-qubit pulses."""
    if abs(over_rotation) < 1e-15:
        return np.eye(2, dtype=complex)
    return rx_matrix(over_rotation)
