"""Factory presets: build Aspen-like devices with realistic noise draws.

A :class:`NoiseProfile` holds the hyper-distributions from which each
qubit's and each (link, gate)'s parameters are sampled. The defaults are
tuned so the simulated device exhibits the paper's phenomenology:

* two-qubit error rates in the ~0.5-6% range with strong link-to-link
  spread (paper Section I cites 1-12.5% across systems);
* the three native gates *compete*: comparable average (RB) fidelities,
  but different coherent-error signatures per link, so the
  calibration-best gate is frequently not the application-best one;
* drift time constants of hours, so within a calibration window the
  device moves noticeably but not chaotically (Figs. 8, 21).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..exceptions import DeviceError
from .device import RigettiAspenDevice
from .drift import DriftingValue, OrnsteinUhlenbeck
from .native_gates import DEFAULT_PULSE_DURATIONS_NS, NATIVE_TWO_QUBIT_GATES
from .noise_parameters import QubitNoiseParameters, TwoQubitGateNoiseParameters
from .topology import Link, Topology, aspen_topology, linear_topology

__all__ = [
    "NoiseProfile",
    "DEFAULT_PROFILE",
    "NOISELESS_PROFILE",
    "build_device",
    "aspen11",
    "aspen_m1",
    "small_test_device",
]

_HOUR_US = 3_600e6


@dataclass(frozen=True)
class NoiseProfile:
    """Hyper-parameters for sampling device physics.

    ``(low, high)`` pairs are uniform ranges; ``(mean, std)`` pairs are
    Gaussian. Per-gate multipliers let a profile bias one native gate's
    coherent signature without touching the others.
    """

    t1_us_range: Tuple[float, float] = (18.0, 35.0)
    t2_over_t1_range: Tuple[float, float] = (0.5, 1.2)
    readout_p01_range: Tuple[float, float] = (0.01, 0.05)
    readout_p10_range: Tuple[float, float] = (0.005, 0.03)
    rx_depolarizing_range: Tuple[float, float] = (4e-4, 2e-3)
    rx_over_rotation_std: float = 0.015
    two_qubit_depolarizing_log_range: Tuple[float, float] = (
        math.log(4e-3),
        math.log(3e-2),
    )
    over_rotation_std: float = 0.14
    zz_error_std: float = 0.12
    #: Heavy tail of the coherent error distribution: a fraction of
    #: (link, gate) pairs draw their coherent errors scaled up. RB-style
    #: calibration shrinks a coherent angle error quadratically (a 0.5 rad
    #: ZZ error still calibrates near 94%), while in-circuit the angles
    #: add linearly across pulses and interfere state-dependently — this
    #: is the mechanism behind the paper's large application-level gaps
    #: between calibration-best and runtime-best gates (Figs. 3, 18).
    coherent_outlier_fraction: float = 0.3
    coherent_outlier_scale: float = 2.5
    #: Per-gate scaling of the coherent error draws — gives each native
    #: gate family its own error signature.
    coherent_scale: Dict[str, float] = field(
        default_factory=lambda: {"xy": 1.15, "cz": 1.0, "cphase": 1.05}
    )
    #: Per-gate scaling of incoherent (depolarizing) draws. CZ's single
    #: pulse is longer and dirtier per pulse; XY/CPHASE pulses are
    #: cleaner but a CNOT needs two — the per-CNOT totals end up
    #: comparable, keeping the three gates in genuine competition.
    depolarizing_scale: Dict[str, float] = field(
        default_factory=lambda: {"xy": 0.95, "cz": 1.8, "cphase": 0.9}
    )
    #: Fraction of links on which each gate is simply unavailable.
    missing_gate_fraction: Dict[str, float] = field(
        default_factory=lambda: {"xy": 0.03, "cz": 0.0, "cphase": 0.08}
    )
    #: OU stationary std as a fraction of each parameter's initial value
    #: (for probabilities) or absolute (for angles). Coherent angles
    #: drift by ~0.3 rad over a correlation time of hours: large enough
    #: that a day-old CPHASE record is effectively uncorrelated with the
    #: device's present state — the staleness trap of Figs. 7-8.
    drift_relative_std: float = 0.60
    drift_angle_std: float = 0.30
    drift_correlation_time_us: float = 8 * _HOUR_US
    pulse_durations_ns: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PULSE_DURATIONS_NS)
    )


DEFAULT_PROFILE = NoiseProfile()

#: Everything exactly zero-noise and drift-free: for pipeline tests.
NOISELESS_PROFILE = NoiseProfile(
    t1_us_range=(1e6, 1e6),
    t2_over_t1_range=(2.0, 2.0),
    readout_p01_range=(0.0, 0.0),
    readout_p10_range=(0.0, 0.0),
    rx_depolarizing_range=(0.0, 0.0),
    rx_over_rotation_std=0.0,
    two_qubit_depolarizing_log_range=(math.log(1e-12), math.log(1e-12)),
    over_rotation_std=0.0,
    zz_error_std=0.0,
    missing_gate_fraction={"xy": 0.0, "cz": 0.0, "cphase": 0.0},
    drift_relative_std=0.0,
    drift_angle_std=0.0,
)


def _drifting(
    value: float,
    std: float,
    tau: float,
    low: float = 0.0,
    high: float = math.inf,
) -> DriftingValue:
    return DriftingValue(
        OrnsteinUhlenbeck(
            mean=value, stationary_std=std, correlation_time=tau, value=value
        ),
        low=low,
        high=high,
    )


def _sample_qubit(
    rng: np.random.Generator, profile: NoiseProfile
) -> QubitNoiseParameters:
    tau = profile.drift_correlation_time_us
    rel = profile.drift_relative_std
    t1 = float(rng.uniform(*profile.t1_us_range))
    t2 = float(t1 * rng.uniform(*profile.t2_over_t1_range))
    p01 = float(rng.uniform(*profile.readout_p01_range))
    p10 = float(rng.uniform(*profile.readout_p10_range))
    rx_depol = float(rng.uniform(*profile.rx_depolarizing_range))
    rx_over = float(rng.normal(0.0, profile.rx_over_rotation_std))
    return QubitNoiseParameters(
        t1_us=_drifting(t1, rel * t1 * 0.3, tau, low=1.0),
        t2_us=_drifting(t2, rel * t2 * 0.3, tau, low=0.5),
        readout_p01=_drifting(p01, rel * p01, tau, high=0.5),
        readout_p10=_drifting(p10, rel * p10, tau, high=0.5),
        rx_depolarizing=_drifting(rx_depol, rel * rx_depol, tau, high=0.1),
        rx_over_rotation=_drifting(
            rx_over, profile.drift_angle_std * 0.2, tau, low=-0.5, high=0.5
        ),
        rx_duration_ns=profile.pulse_durations_ns["rx"],
    )


def _sample_link_gate(
    rng: np.random.Generator, profile: NoiseProfile, gate_name: str
) -> TwoQubitGateNoiseParameters:
    tau = profile.drift_correlation_time_us
    rel = profile.drift_relative_std
    coh_scale = profile.coherent_scale.get(gate_name, 1.0)
    dep_scale = profile.depolarizing_scale.get(gate_name, 1.0)
    log_low, log_high = profile.two_qubit_depolarizing_log_range
    depol = float(dep_scale * math.exp(rng.uniform(log_low, log_high)))
    if rng.random() < profile.coherent_outlier_fraction:
        coh_scale *= profile.coherent_outlier_scale
    over = float(rng.normal(0.0, coh_scale * profile.over_rotation_std))
    zz = float(rng.normal(0.0, coh_scale * profile.zz_error_std))
    return TwoQubitGateNoiseParameters(
        over_rotation=_drifting(
            over, profile.drift_angle_std, tau, low=-0.8, high=0.8
        ),
        zz_error=_drifting(
            zz, profile.drift_angle_std, tau, low=-0.8, high=0.8
        ),
        depolarizing=_drifting(depol, rel * depol, tau, high=0.3),
        duration_ns=profile.pulse_durations_ns[gate_name],
    )


def build_device(
    topology: Topology,
    seed: int = 0,
    profile: NoiseProfile = DEFAULT_PROFILE,
    idle_noise: bool = False,
    crosstalk_zz: float = 0.0,
    channel_cache: bool = True,
    sim_cache: bool = True,
    batched_sim: bool = True,
    clifford_fast_path: bool = False,
) -> RigettiAspenDevice:
    """Sample a full device from *profile* on the given topology.

    The same seed always yields the same device (parameters, missing
    gates, and future drift trajectory). *idle_noise* additionally
    charges T1/T2 decay to idle qubits per moment (extension; off by
    default to keep the paper-calibrated phenomenology unchanged).
    """
    rng = np.random.default_rng(seed)
    qubit_params = {q: _sample_qubit(rng, profile) for q in topology.qubits}
    gate_params: Dict[Tuple[Link, str], TwoQubitGateNoiseParameters] = {}
    for link in topology.links:
        available = [
            g
            for g in NATIVE_TWO_QUBIT_GATES
            if rng.random() >= profile.missing_gate_fraction.get(g, 0.0)
        ]
        if not available:
            available = ["cz"]  # every Aspen link supports CZ
        for gate_name in available:
            gate_params[(link, gate_name)] = _sample_link_gate(
                rng, profile, gate_name
            )
    return RigettiAspenDevice(
        topology=topology,
        qubit_params=qubit_params,
        gate_params=gate_params,
        seed=seed + 1,
        idle_noise=idle_noise,
        crosstalk_zz=crosstalk_zz,
        channel_cache=channel_cache,
        sim_cache=sim_cache,
        batched_sim=batched_sim,
        clifford_fast_path=clifford_fast_path,
    )


def aspen11(
    seed: int = 11,
    profile: NoiseProfile = DEFAULT_PROFILE,
    idle_noise: bool = False,
    crosstalk_zz: float = 0.0,
    sim_cache: bool = True,
    batched_sim: bool = True,
    clifford_fast_path: bool = False,
) -> RigettiAspenDevice:
    """A 38-qubit Aspen-11-like device (one row of five octagons).

    Five octagons give 40 fabricated qubits; two are dead, matching the
    38 usable qubits the paper reports.
    """
    topology = aspen_topology(
        rows=1,
        cols=5,
        name="aspen-11",
        dead_qubits=(14, 33),
    )
    return build_device(
        topology,
        seed=seed,
        profile=profile,
        idle_noise=idle_noise,
        crosstalk_zz=crosstalk_zz,
        sim_cache=sim_cache,
        batched_sim=batched_sim,
        clifford_fast_path=clifford_fast_path,
    )


def aspen_m1(
    seed: int = 1,
    profile: NoiseProfile = DEFAULT_PROFILE,
    idle_noise: bool = False,
    crosstalk_zz: float = 0.0,
    sim_cache: bool = True,
    batched_sim: bool = True,
    clifford_fast_path: bool = False,
) -> RigettiAspenDevice:
    """An 80-qubit Aspen-M-1-like device (two rows of five octagons).

    The full lattice has 106 links; three are disabled so the active
    count matches the 103 physical links the paper counts.
    """
    topology = aspen_topology(
        rows=2,
        cols=5,
        name="aspen-m-1",
        disabled_links=((11, 26), (10, 63), (31, 46)),
    )
    return build_device(
        topology,
        seed=seed,
        profile=profile,
        idle_noise=idle_noise,
        crosstalk_zz=crosstalk_zz,
        sim_cache=sim_cache,
        batched_sim=batched_sim,
        clifford_fast_path=clifford_fast_path,
    )


def small_test_device(
    num_qubits: int = 5,
    seed: int = 7,
    profile: NoiseProfile = DEFAULT_PROFILE,
    channel_cache: bool = True,
    sim_cache: bool = True,
    batched_sim: bool = True,
    clifford_fast_path: bool = False,
) -> RigettiAspenDevice:
    """A linear-chain device for unit tests and quick examples."""
    # Force all three gates available on every link so tests are stable.
    forced = NoiseProfile(
        **{
            **profile.__dict__,
            "missing_gate_fraction": {"xy": 0.0, "cz": 0.0, "cphase": 0.0},
        }
    )
    return build_device(
        linear_topology(num_qubits, name=f"line-{num_qubits}"),
        seed=seed,
        profile=forced,
        channel_cache=channel_cache,
        sim_cache=sim_cache,
        batched_sim=batched_sim,
        clifford_fast_path=clifford_fast_path,
    )
