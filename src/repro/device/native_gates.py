"""Native gate sets and CNOT decomposition rules (paper Fig. 2).

Rigetti Aspen devices execute ``RX(k*pi/2)``, ``RZ(theta)`` (virtual,
zero-duration) and three two-qubit natives: ``XY(pi)`` (iSWAP), ``CZ``,
and ``CPHASE(theta)``. A program-level CNOT can be nativized through any
of the three:

* **CZ** — one entangling pulse: ``CNOT = (I x H) CZ (I x H)``;
* **CPHASE** — two shorter pulses: ``CPHASE(pi/2)`` is diagonal so two of
  them compose exactly to CZ, matching the paper's note that the XY and
  CPHASE pulses are shorter but a CNOT needs two of them;
* **XY** — two ``XY(pi)`` pulses with single-qubit dressing (the
  Schuch–Siewert construction; the exact pi/2-multiple corrections were
  derived numerically and are verified against the CNOT unitary in the
  test suite).

All decompositions are exact up to global phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..circuit.gates import Gate
from ..exceptions import DeviceError

__all__ = [
    "NativeGateSet",
    "RIGETTI_NATIVE_GATES",
    "NATIVE_TWO_QUBIT_GATES",
    "DEFAULT_PULSE_DURATIONS_NS",
    "cnot_pulse_count",
    "cnot_duration_ns",
    "hadamard_native",
    "u3_native",
    "cnot_decomposition",
    "native_two_qubit_gate_instances",
]

_HALF_PI = math.pi / 2.0

#: Canonical order of the Rigetti two-qubit natives used everywhere
#: (sequence encodings, search candidate order, report columns).
NATIVE_TWO_QUBIT_GATES: Tuple[str, ...] = ("xy", "cz", "cphase")

#: Physical pulse durations in nanoseconds. RZ is virtual (frame update).
#: CZ uses one long pulse; XY and CPHASE pulses are shorter but a CNOT
#: needs two of them (paper Fig. 2c), so total entangling time is similar
#: and the fidelity competition between the gates stays realistic.
DEFAULT_PULSE_DURATIONS_NS: Dict[str, float] = {
    "rx": 40.0,
    "rz": 0.0,
    "cz": 180.0,
    "xy": 100.0,
    "cphase": 90.0,
    "measure": 1800.0,
}

#: Number of two-qubit pulses a CNOT costs through each native gate.
_PULSES_PER_CNOT: Dict[str, int] = {"cz": 1, "xy": 2, "cphase": 2}


@dataclass(frozen=True)
class NativeGateSet:
    """The instruction set a device executes directly.

    Attributes:
        name: Identifier for reports.
        single_qubit: Allowed single-qubit gate names.
        two_qubit: Allowed two-qubit native gate names, canonical order.
        rx_angles: Allowed RX angles (Rigetti pulses exist only for
            multiples of pi/2; RZ is unconstrained because it is virtual).
    """

    name: str
    single_qubit: Tuple[str, ...]
    two_qubit: Tuple[str, ...]
    rx_angles: Tuple[float, ...] = (
        -math.pi,
        -_HALF_PI,
        0.0,
        _HALF_PI,
        math.pi,
    )

    def is_native(self, gate: Gate) -> bool:
        """True if *gate* is directly executable on this gate set."""
        if gate.is_measurement or gate.is_barrier:
            return True
        if gate.num_qubits == 1:
            if gate.name not in self.single_qubit:
                return False
            if gate.name == "rx":
                return any(
                    math.isclose(gate.params[0], angle, abs_tol=1e-9)
                    for angle in self.rx_angles
                )
            return True
        return gate.name in self.two_qubit


RIGETTI_NATIVE_GATES = NativeGateSet(
    name="rigetti-aspen",
    single_qubit=("rx", "rz"),
    two_qubit=NATIVE_TWO_QUBIT_GATES,
)


def cnot_pulse_count(native: str) -> int:
    """Two-qubit pulses per CNOT through the given native gate."""
    try:
        return _PULSES_PER_CNOT[native]
    except KeyError as exc:
        raise DeviceError(f"unknown native two-qubit gate {native!r}") from exc


def cnot_duration_ns(
    native: str, durations: Dict[str, float] = DEFAULT_PULSE_DURATIONS_NS
) -> float:
    """Total entangling-pulse time of one CNOT through *native*."""
    return cnot_pulse_count(native) * durations[native]


def hadamard_native(qubit: int) -> List[Gate]:
    """H as native gates: ``RZ(pi/2) RX(pi/2) RZ(pi/2)`` (application order)."""
    return [
        Gate("rz", (qubit,), (_HALF_PI,)),
        Gate("rx", (qubit,), (_HALF_PI,)),
        Gate("rz", (qubit,), (_HALF_PI,)),
    ]


def u3_native(theta: float, phi: float, lam: float, qubit: int) -> List[Gate]:
    """U3 as natives: ``RZ(phi) RX(-pi/2) RZ(theta) RX(pi/2) RZ(lam)``.

    Uses the identity ``RY(theta) = RX(-pi/2) RZ(theta) RX(pi/2)`` inside
    the standard ZYZ Euler form; exact up to global phase. Returned in
    application order (the RZ(lam) first).
    """
    return [
        Gate("rz", (qubit,), (lam,)),
        Gate("rx", (qubit,), (_HALF_PI,)),
        Gate("rz", (qubit,), (theta,)),
        Gate("rx", (qubit,), (-_HALF_PI,)),
        Gate("rz", (qubit,), (phi,)),
    ]


# Single-qubit U3 corrections for the two-XY(pi) CNOT decomposition,
# derived numerically (see DESIGN.md §5.4) and verified exact in tests.
# Each entry is (theta, phi, lam) in units of pi/2 multiples.
_XY_LAYER_1 = ((0.0, math.pi, 0.0), (0.0, _HALF_PI, math.pi))
_XY_LAYER_2 = ((_HALF_PI, 0.0, _HALF_PI), (0.0, 0.0, _HALF_PI))
_XY_LAYER_3 = ((0.0, _HALF_PI, _HALF_PI), (_HALF_PI, -3 * _HALF_PI, _HALF_PI))


def _u3_layer(
    params: Tuple[Tuple[float, float, float], Tuple[float, float, float]],
    control: int,
    target: int,
) -> List[Gate]:
    gates: List[Gate] = []
    for (theta, phi, lam), qubit in zip(params, (control, target)):
        gates.extend(u3_native(theta, phi, lam, qubit))
    return gates


def cnot_decomposition(native: str, control: int, target: int) -> List[Gate]:
    """Nativize ``CNOT(control, target)`` through the chosen native gate.

    Returns the gate list in application order, exact up to global phase.
    """
    if native == "cz":
        return (
            hadamard_native(target)
            + [Gate("cz", (control, target))]
            + hadamard_native(target)
        )
    if native == "cphase":
        return (
            hadamard_native(target)
            + [
                Gate("cphase", (control, target), (_HALF_PI,)),
                Gate("cphase", (control, target), (_HALF_PI,)),
            ]
            + hadamard_native(target)
        )
    if native == "xy":
        return (
            _u3_layer(_XY_LAYER_1, control, target)
            + [Gate("xy", (control, target), (math.pi,))]
            + _u3_layer(_XY_LAYER_2, control, target)
            + [Gate("xy", (control, target), (math.pi,))]
            + _u3_layer(_XY_LAYER_3, control, target)
        )
    raise DeviceError(f"unknown native two-qubit gate {native!r}")


def native_two_qubit_gate_instances(
    native: str, qubit_a: int, qubit_b: int
) -> List[Gate]:
    """The entangling pulses a CNOT emits on a link through *native*.

    Used by the noise model to charge per-pulse errors: one CZ pulse, two
    XY(pi) pulses, or two CPHASE(pi/2) pulses.
    """
    if native == "cz":
        return [Gate("cz", (qubit_a, qubit_b))]
    if native == "xy":
        return [Gate("xy", (qubit_a, qubit_b), (math.pi,))] * 2
    if native == "cphase":
        return [Gate("cphase", (qubit_a, qubit_b), (_HALF_PI,))] * 2
    raise DeviceError(f"unknown native two-qubit gate {native!r}")
