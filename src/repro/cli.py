"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile`` (alias ``angel``) — nativize a program (Table I name or
  OpenQASM file) for a simulated device under a chosen policy
  (baseline / angel / a fixed gate), execute it, and report the
  success rate.
* ``serve`` — replay a synthetic multi-tenant workload through the
  :class:`~repro.service.AngelService` compile service (fair
  scheduling, probe coalescing, cross-tenant dedup).
* ``load`` — drive the compile service from a workload file
  (:mod:`repro.loadgen`): seeded arrival processes, SLO percentile
  extraction from spans, and a pass/fail verdict table (``--check``
  turns violations into a nonzero exit).
* ``experiments`` — regenerate paper artifacts (delegates to
  :mod:`repro.experiments.runner`).
* ``device`` — print a device's topology and calibrated fidelity map.
* ``suite`` — print the benchmark suite (Table I).
* ``draw`` — ASCII-render a program.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from .circuit import QuantumCircuit, from_qasm, to_qasm
from .compiler import OPTIMIZATION_LEVELS
from .core import Angel, AngelConfig, NativeGateSequence
from .device.native_gates import NATIVE_TWO_QUBIT_GATES
from .exceptions import ReproError
from .exec import Job
from .experiments import ExperimentContext, run_experiment
from .metrics import success_rate_from_counts
from .programs import benchmark_suite, get_benchmark
from .service import FAULT_PROFILES

__all__ = ["main", "build_parser"]


def _load_program(source: str) -> QuantumCircuit:
    """A Table I benchmark name, or a path to an OpenQASM 2 file."""
    path = Path(source)
    if path.exists():
        circuit = from_qasm(path.read_text())
        circuit.name = path.stem
        return circuit
    return get_benchmark(source).build()


def _make_context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext.create(
        device_name=args.device,
        seed=args.seed,
        drift_hours=args.drift_hours,
        backend=getattr(args, "backend", "local"),
        fault_profile=getattr(args, "fault_profile", "none"),
        fault_seed=getattr(args, "fault_seed", 0),
        sim_cache=not getattr(args, "no_sim_cache", False),
        batched_sim=not getattr(args, "no_batched_sim", False),
        clifford_fast_path=(
            getattr(args, "clifford_fast_path", False)
            and not getattr(args, "no_clifford_fast_path", False)
        ),
        parallel=getattr(args, "parallel", False),
        max_workers=getattr(args, "max_workers", None),
        trace=getattr(args, "trace", None),
        metrics=getattr(args, "metrics", False),
        optimization_level=(
            0
            if getattr(args, "no_opt_passes", False)
            else getattr(args, "opt_level", 0)
        ),
    )


def _finish_context(
    context: ExperimentContext, args: argparse.Namespace
) -> None:
    """Close the context, then print the metrics ledger if asked."""
    context.close()
    if getattr(args, "metrics", False) and context.metrics_registry:
        print("--- metrics ---")
        print(context.metrics_registry.to_text())
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace}")


def _add_context_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--device",
        default="aspen-11",
        choices=("aspen-11", "aspen-m-1"),
        help="simulated device preset",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="device / chip-day seed"
    )
    parser.add_argument(
        "--drift-hours",
        type=float,
        default=30.0,
        help="hours of drift since the last full calibration",
    )
    parser.add_argument(
        "--backend",
        default="local",
        choices=("local", "remote"),
        help="run jobs on the in-process device or through the "
        "emulated cloud QPU service (repro.service)",
    )
    parser.add_argument(
        "--fault-profile",
        default="none",
        choices=sorted(FAULT_PROFILES),
        help="cloud-service fault injection preset (remote backend)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the service fault stream and backoff jitter",
    )
    parser.add_argument(
        "--no-sim-cache",
        action="store_true",
        help="disable the simulation cache hierarchy (prefix-state and "
        "distribution memoization) for A/B runs against the uncached path",
    )
    parser.add_argument(
        "--no-batched-sim",
        action="store_true",
        help="disable the batched candidate-simulation engine "
        "(shared-suffix stacked contractions) for A/B runs against "
        "the one-at-a-time path",
    )
    parser.add_argument(
        "--clifford-fast-path",
        action="store_true",
        help="route pure-Clifford probes through the stabilizer "
        "simulator with a perturbative noise treatment (counts are "
        "differential-test-bounded, not bit-identical)",
    )
    parser.add_argument(
        "--no-clifford-fast-path",
        action="store_true",
        help="force the dense engine even when --clifford-fast-path "
        "is set (A/B bisection flag)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run executor batches on the persistent worker pool "
        "(snapshot batch discipline) instead of sequentially",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker-pool size for --parallel (default: auto; 1 forces "
        "the in-process snapshot path)",
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        default=0,
        choices=OPTIMIZATION_LEVELS,
        help="pre-routing circuit optimization level (0 = off, the "
        "bit-identical default; 1 = cancellation/merging/fusion; "
        "2 = level 1 plus two-qubit rewrites and native cleanup)",
    )
    parser.add_argument(
        "--no-opt-passes",
        action="store_true",
        help="force optimization level 0 regardless of --opt-level "
        "(A/B bisection flag)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream a JSONL span trace of the run to FILE "
        "(search passes, links, probes, backend jobs)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry (executor/cache/service "
        "counters) after the run",
    )


def _configure_compile_parser(parser: argparse.ArgumentParser) -> None:
    """Shared argument set for ``compile`` and its ``angel`` alias.

    ``angel`` is registered as a full subparser (not an argparse alias)
    so its usage/error messages carry the name the user actually typed
    — argparse aliases print the canonical name, which made ``repro
    angel`` error paths inconsistent with ``repro compile``.
    """
    parser.add_argument(
        "program", help="Table I benchmark name or OpenQASM 2 file path"
    )
    parser.add_argument(
        "--policy",
        default="angel",
        choices=("angel", "baseline", *NATIVE_TWO_QUBIT_GATES),
        help="native gate selection policy (or a fixed gate)",
    )
    parser.add_argument("--shots", type=int, default=4096)
    parser.add_argument("--probe-shots", type=int, default=1024)
    parser.add_argument(
        "--emit-qasm",
        action="store_true",
        help="print the native circuit as OpenQASM",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print execution-service statistics (jobs/shots per phase)",
    )
    _add_context_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ANGEL (HPCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _configure_compile_parser(
        sub.add_parser("compile", help="nativize and execute a program")
    )
    _configure_compile_parser(
        sub.add_parser("angel", help="alias for compile")
    )

    serve_parser = sub.add_parser(
        "serve",
        help="replay a multi-tenant workload through the compile service",
    )
    serve_parser.add_argument(
        "--tenants", type=int, default=4, help="number of synthetic tenants"
    )
    serve_parser.add_argument(
        "--requests",
        type=int,
        default=2,
        help="compile requests per tenant",
    )
    serve_parser.add_argument(
        "--programs",
        default="GHZ_n4,BV_n4,QAOA_n5",
        help="comma-separated benchmark names cycled across requests",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="service thread-pool size (scheduled units in flight)",
    )
    serve_parser.add_argument(
        "--window-jobs",
        type=int,
        default=None,
        help="per-round job budget for the DRR scheduler (align with "
        "the fault profile's calibration-window quota)",
    )
    serve_parser.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable the cross-tenant probe-distribution store",
    )
    serve_parser.add_argument("--shots", type=int, default=1024)
    serve_parser.add_argument("--probe-shots", type=int, default=256)
    serve_parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="route requests across N independently drifting device "
        "replicas (0 disables fleet mode)",
    )
    serve_parser.add_argument(
        "--fleet-stagger-hours",
        type=float,
        default=0.0,
        help="calibration-cadence stagger between consecutive replicas",
    )
    serve_parser.add_argument(
        "--fleet-record",
        metavar="FILE",
        default=None,
        help="write the router's placement map to FILE (JSON) for replay",
    )
    serve_parser.add_argument(
        "--fleet-replay",
        metavar="FILE",
        default=None,
        help="replay a recorded placement map instead of live routing",
    )
    _add_context_arguments(serve_parser)

    load_parser = sub.add_parser(
        "load",
        help="drive the compile service from a workload file and "
        "gate on its SLO bounds",
    )
    load_parser.add_argument(
        "--workload",
        required=True,
        metavar="FILE",
        help="workload spec (.yaml/.yml/.json; see "
        "examples/workload_burst.yaml)",
    )
    load_parser.add_argument(
        "--pacing",
        default="none",
        choices=("none", "wall"),
        help="'none' submits in schedule order as fast as possible "
        "(CI mode); 'wall' honors offsets on the host clock",
    )
    load_parser.add_argument(
        "--speedup",
        type=float,
        default=1.0,
        help="with --pacing wall, divide every offset/think time by "
        "this factor",
    )
    load_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the workload's schedule seed",
    )
    load_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream the run's JSONL span trace to FILE",
    )
    load_parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the full SLO analysis + verdict as JSON to FILE",
    )
    load_parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when any request fails or any declared SLO "
        "bound is violated",
    )

    experiments_parser = sub.add_parser(
        "experiments", help="regenerate paper artifacts"
    )
    experiments_parser.add_argument("ids", nargs="+", metavar="experiment-id")

    device_parser = sub.add_parser("device", help="device fidelity map")
    device_parser.add_argument("--max-links", type=int, default=None)
    _add_context_arguments(device_parser)

    sub.add_parser("suite", help="print the benchmark suite (Table I)")

    draw_parser = sub.add_parser("draw", help="ASCII-render a program")
    draw_parser.add_argument(
        "program", help="Table I benchmark name or OpenQASM 2 file path"
    )
    return parser


def _command_compile(args: argparse.Namespace) -> int:
    context = _make_context(args)
    try:
        return _run_compile(context, args)
    finally:
        # Error paths (ReproError, interrupts) must still release the
        # worker pools and restore observability; close is idempotent,
        # so the happy path's _finish_context close is harmless.
        context.close()


def _run_compile(
    context: ExperimentContext, args: argparse.Namespace
) -> int:
    program = _load_program(args.program)
    compiled = context.transpile(program)
    ideal = compiled.ideal_distribution()
    print(
        f"{program.name}: {compiled.num_cnot_sites} CNOT sites on "
        f"{len(compiled.links_used())} links of {context.device.name}"
    )
    executor = context.executor
    if args.policy == "angel":
        angel = Angel(
            context.device,
            context.calibration,
            AngelConfig(probe_shots=args.probe_shots, seed=args.seed),
            executor=executor,
        )
        result = angel.select(compiled)
        sequence = result.sequence
        print(
            f"ANGEL: {result.copycats_executed} CopyCat probes; "
            f"{result.reference_sequence.label()} -> {sequence.label()}"
        )
        if result.degraded_links:
            print(
                f"degraded links (probe failures; calibration choice "
                f"kept): {sorted(result.degraded_links)}"
            )
    elif args.policy == "baseline":
        from .core import noise_adaptive_sequence

        sequence = noise_adaptive_sequence(
            compiled.sites, context.calibration, compiled.gate_options()
        )
        print(f"baseline (noise-adaptive): {sequence.label()}")
    else:
        sequence = NativeGateSequence.uniform(compiled.sites, args.policy)
        print(f"fixed gate: {sequence.label()}")
    native = compiled.nativized(sequence, name_suffix=f"_{args.policy}")
    result = executor.submit(Job(native, args.shots, tag="final"))
    sr = success_rate_from_counts(ideal, result.counts)
    print(f"success rate over {args.shots} shots: {sr:.4f}")
    if args.stats:
        print("--- execution-service stats ---")
        print(executor.stats.to_text())
    if args.emit_qasm:
        print()
        print(to_qasm(native))
    _finish_context(context, args)
    return 0


def _command_device(args: argparse.Namespace) -> int:
    context = _make_context(args)
    try:
        result = run_experiment(
            "fig17", context=context, max_links=args.max_links
        )
        print(result.to_text())
        _finish_context(context, args)
        return 0
    finally:
        context.close()


def _command_serve(args: argparse.Namespace) -> int:
    from .service import (
        AngelService,
        RequestSpec,
        TenantConfig,
        replay_workload,
    )

    programs = [name for name in args.programs.split(",") if name]
    if not programs:
        raise ReproError("--programs must name at least one benchmark")
    if args.tenants < 1 or args.requests < 1:
        raise ReproError("--tenants and --requests must be >= 1")
    if args.fleet < 0:
        raise ReproError("--fleet must be >= 0")
    if (args.fleet_record or args.fleet_replay) and not args.fleet:
        raise ReproError(
            "--fleet-record/--fleet-replay require --fleet N"
        )
    for name in programs:
        get_benchmark(name)  # fail fast on typos
    base = RequestSpec(
        program=programs[0],
        shots=args.shots,
        probe_shots=args.probe_shots,
        device_name=args.device,
        seed=args.seed,
        drift_hours=args.drift_hours,
        backend=args.backend,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
        batched_sim=not args.no_batched_sim,
        clifford_fast_path=(
            args.clifford_fast_path and not args.no_clifford_fast_path
        ),
        opt_level=(0 if args.no_opt_passes else args.opt_level),
    )
    workload = {
        f"tenant-{index}": [
            dataclasses.replace(
                base, program=programs[request % len(programs)]
            )
            for request in range(args.requests)
        ]
        for index in range(args.tenants)
    }
    fleet = None
    placements = None
    if args.fleet:
        from .fleet import FleetSpec

        fleet = FleetSpec.create(
            args.fleet, stagger_hours=args.fleet_stagger_hours
        )
        if args.fleet_replay:
            placements = json.loads(Path(args.fleet_replay).read_text())
    # The service is created here (not inside replay_workload) so the
    # end-of-run summary can read its store/fleet ledgers before close.
    service = AngelService(
        num_workers=args.workers,
        round_budget_jobs=args.window_jobs,
        dedup=not args.no_dedup,
        tenants=tuple(TenantConfig(name) for name in sorted(workload)),
        fleet=fleet,
        fleet_placements=placements,
    )
    try:
        outcomes = replay_workload(workload, service=service)
    finally:
        service.close()
    total = failed = probes = dedup_hits = 0
    print(
        f"{'tenant':12s} {'ok':>4s} {'fail':>5s} {'probes':>7s} "
        f"{'dedup':>6s} {'mean latency':>13s}"
    )
    for name in sorted(outcomes):
        slots = outcomes[name]
        done = [o for o in slots if not isinstance(o, BaseException)]
        latencies = [o.latency_s for o in done]
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        tenant_probes = sum(o.probes_run for o in done)
        tenant_dedup = sum(o.dedup_hits for o in done)
        print(
            f"{name:12s} {len(done):>4d} {len(slots) - len(done):>5d} "
            f"{tenant_probes:>7d} {tenant_dedup:>6d} "
            f"{mean_latency:>12.3f}s"
        )
        total += len(slots)
        failed += len(slots) - len(done)
        probes += tenant_probes
        dedup_hits += tenant_dedup
    ratio = dedup_hits / probes if probes else 0.0
    print(
        f"total: {total} requests ({failed} failed), {probes} probes, "
        f"{dedup_hits} dedup hits ({ratio:.1%})"
    )
    for row in service.store_stats():
        print(
            f"dedup store [{row['partition']}]: {row['hits']} hits, "
            f"{row['publishes']} publishes, {row['evictions']} "
            f"evictions ({row['entries']} entries)"
        )
    report = service.fleet_report()
    if report is not None:
        print(
            f"{'replica':12s} {'placed':>6s} {'jobs':>6s} "
            f"{'peak-q':>6s} {'device-time':>12s}"
        )
        for replica in report["replicas"]:
            print(
                f"{replica['name']:12s} {replica['placements']:>6d} "
                f"{replica['jobs']:>6d} {replica['peak_queue_depth']:>6d} "
                f"{replica['device_time_us'] / 1e6:>11.3f}s"
            )
        router = report["router"]
        print(
            f"router: {router['placements']} placements, "
            f"{router['migrations']} migrations, affinity-hit ratio "
            f"{router['affinity_hit_ratio']:.1%}"
        )
        if args.fleet_record:
            record_path = Path(args.fleet_record)
            record_path.write_text(
                json.dumps(service.fleet.placement_map(), indent=2)
                + "\n"
            )
            print(f"placements recorded to {record_path}")
    return 0


def _command_load(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from .loadgen import LoadGenerator, load_workload

    workload = load_workload(args.workload)
    if args.seed is not None:
        workload = _dc.replace(workload, seed=args.seed)
    generator = LoadGenerator(workload)
    schedule = generator.schedule()
    print(
        f"workload {workload.name!r}: {len(workload.tenants)} tenants, "
        f"{len(schedule)} requests, seed {workload.seed}, "
        f"{workload.workers} service workers"
        + (f", fleet {workload.fleet}" if workload.fleet else "")
    )
    report = generator.run(
        pacing=args.pacing,
        speedup=args.speedup,
        trace_path=args.trace,
    )
    analysis = report.analyze()
    print(
        f"{'tenant':12s} {'ok':>4s} {'fail':>5s} {'rej':>4s} "
        f"{'p50':>8s} {'p95':>8s} {'q-p95':>8s} {'dedup':>6s}"
    )
    for name, block in analysis["per_tenant"].items():
        print(
            f"{name:12s} {block['completed']:>4d} {block['failed']:>5d} "
            f"{report.tenant_report.get(name, {}).get('rejected', 0):>4} "
            f"{block['latency']['host']['p50_s']:>7.3f}s "
            f"{block['latency']['host']['p95_s']:>7.3f}s "
            f"{block['queue_wait']['p95_s']:>7.3f}s "
            f"{block['dedup']['ratio']:>6.1%}"
        )
    print(
        f"total: {analysis['completed']}/{analysis['requests']} completed "
        f"({analysis['rejected']} rejected, "
        f"{analysis['rejection_rate']:.1%}) in "
        f"{report.wall_time_s:.2f}s = "
        f"{analysis['throughput_rps']:.2f} req/s"
    )
    latency = analysis["latency"]
    print(
        f"latency: host p50 {latency['host']['p50_s']:.3f}s / "
        f"p95 {latency['host']['p95_s']:.3f}s / "
        f"p99 {latency['host']['p99_s']:.3f}s "
        f"(jitter {latency['host']['jitter_s']:.3f}s); "
        f"device p95 {latency['device']['p95_us'] / 1e6:.3f}s simulated"
    )
    coalescing = analysis["coalescing"]
    print(
        f"coalescing: {coalescing['rounds']} rounds, "
        f"{coalescing['mean_units_per_round']:.2f} units/round; "
        f"dedup ratio {analysis['dedup']['ratio']:.1%}"
    )
    verdict = report.verdict()
    if workload.slo:
        print()
        print(verdict.to_text())
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.out:
        payload = {
            "workload": workload.to_dict(),
            "analysis": analysis,
            "verdict": verdict.to_dict(),
        }
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.out}")
    if args.check and (report.failed or not verdict.passed):
        reasons = []
        if report.failed:
            reasons.append(f"{report.failed} requests failed")
        if not verdict.passed:
            reasons.append(
                f"{len(verdict.violations)} SLO bounds violated"
            )
        print(f"CHECK FAILED: {'; '.join(reasons)}", file=sys.stderr)
        return 1
    return 0


def _command_suite() -> int:
    print(f"{'name':12s} {'qubits':>6s} {'CNOTs':>6s}  description")
    for spec in benchmark_suite(include_extras=True):
        print(
            f"{spec.name:12s} {spec.qubits:>6d} {spec.logical_cnots:>6d}"
            f"  {spec.description}"
        )
    return 0


def _command_draw(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    print(program.draw())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command in ("compile", "angel"):
            return _command_compile(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "load":
            return _command_load(args)
        if args.command == "experiments":
            for experiment_id in args.ids:
                print(run_experiment(experiment_id).to_text())
                print()
            return 0
        if args.command == "device":
            return _command_device(args)
        if args.command == "suite":
            return _command_suite()
        if args.command == "draw":
            return _command_draw(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces command choice


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
