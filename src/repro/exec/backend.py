"""Execution backends: where jobs actually run.

:class:`Backend` is the protocol the :class:`~repro.exec.executor.
BatchExecutor` drives; :class:`LocalBackend` implements it on top of the
in-process :class:`~repro.device.device.RigettiAspenDevice`. The seam is
deliberately narrow — submit jobs, get counts — so later PRs can slot in
remote/queued backends (the paper ran on Amazon Braket) or shard across
several simulated chips without touching the algorithm layer.

``LocalBackend`` offers two batch disciplines:

* *sequential* — jobs run strictly one after another through
  ``device.run``; the device clock advances (and noise drifts) between
  jobs exactly as in the paper's probing loop. Bit-identical to calling
  the device directly.
* *parallel* — all jobs' exact output distributions are computed against
  the device's **current parameter snapshot** (optionally on a process
  pool), then sampled and accounted job-by-job. This mirrors a cloud
  batch submission where every circuit in the batch is compiled and run
  against one calibration snapshot. The clock/drift accounting sequence
  is identical to sequential execution (same advance calls in the same
  order), so the device *ends* in the same state; only the within-batch
  drift seen by later jobs differs.
"""

from __future__ import annotations

import warnings
from pickle import PicklingError
from typing import Dict, List, Optional, Protocol, Sequence, TYPE_CHECKING

import numpy as np

from ..sim.sampler import sample_distribution
from .job import Job, JobResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..device.device import RigettiAspenDevice

__all__ = ["Backend", "LocalBackend"]


class Backend(Protocol):
    """Anything that can turn Jobs into JobResults."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol
        ...

    def submit(self, job: Job) -> JobResult:  # pragma: no cover - protocol
        ...

    def submit_batch(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[JobResult]:  # pragma: no cover - protocol
        ...


# Per-process device replica for pool workers (set by the initializer so
# the device is pickled once per worker, not once per job).
_WORKER_DEVICE: Optional["RigettiAspenDevice"] = None


def _init_worker(device: "RigettiAspenDevice") -> None:  # pragma: no cover
    global _WORKER_DEVICE
    _WORKER_DEVICE = device


def _worker_distribution(circuit) -> Dict[str, float]:  # pragma: no cover
    assert _WORKER_DEVICE is not None
    return _WORKER_DEVICE.noisy_distribution(circuit)


# Warn at most once per process when the pool path degrades in-process;
# every occurrence is still counted in ``LocalBackend.pool_fallbacks``.
_POOL_FALLBACK_WARNED = False


class LocalBackend:
    """A Backend wrapping the in-process simulated Aspen device."""

    def __init__(self, device: "RigettiAspenDevice") -> None:
        self.device = device
        #: Parallel batches that fell back to in-process computation
        #: because a process pool could not be created or fed.
        self.pool_fallbacks = 0

    @property
    def name(self) -> str:
        return f"local[{self.device.name}]"

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobResult:
        """Run one job through ``device.run`` (clock advances after it)."""
        counts = self.device.run(
            job.circuit,
            job.shots,
            seed=job.seed,
            job_id=job.job_id,
            tag=job.tag,
        )
        record = self.device.execution_log[-1]
        return JobResult(
            job_id=job.job_id,
            counts=counts,
            shots=job.shots,
            tag=job.tag,
            seed=job.seed,
            started_at_us=record.started_at_us,
            duration_us=record.duration_us,
            qubits=record.qubits,
        )

    def submit_batch(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[JobResult]:
        if not jobs:
            return []
        if not parallel or len(jobs) == 1:
            return [self.submit(job) for job in jobs]
        distributions = self._batch_distributions(jobs, max_workers)
        results: List[JobResult] = []
        for job, distribution in zip(jobs, distributions):
            rng = (
                np.random.default_rng(job.seed)
                if job.seed is not None
                else self.device._sample_rng
            )
            counts = sample_distribution(distribution, job.shots, rng)
            record = self.device.log_execution(
                job.circuit,
                job.shots,
                seed=job.seed,
                job_id=job.job_id,
                tag=job.tag,
            )
            results.append(
                JobResult(
                    job_id=job.job_id,
                    counts=counts,
                    shots=job.shots,
                    tag=job.tag,
                    seed=job.seed,
                    started_at_us=record.started_at_us,
                    duration_us=record.duration_us,
                    qubits=record.qubits,
                )
            )
        return results

    def _batch_distributions(
        self, jobs: Sequence[Job], max_workers: Optional[int]
    ) -> List[Dict[str, float]]:
        """Exact distributions for all jobs against the current snapshot.

        Tries a process pool (density-matrix jobs are CPU-bound and
        independent); falls back to in-process computation when pools
        are unavailable (restricted environments) or not worth it.
        """
        if max_workers is not None and max_workers < 2:
            return [
                self.device.noisy_distribution(job.circuit) for job in jobs
            ]
        try:
            import concurrent.futures

            with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(self.device,),
            ) as pool:
                return list(
                    pool.map(
                        _worker_distribution,
                        [job.circuit for job in jobs],
                    )
                )
        except (OSError, PicklingError, ImportError) as exc:
            # Pool creation/pickling can fail in sandboxed environments;
            # the snapshot semantics do not depend on parallelism. Any
            # other exception is a real simulation error and propagates.
            global _POOL_FALLBACK_WARNED
            self.pool_fallbacks += 1
            if not _POOL_FALLBACK_WARNED:
                _POOL_FALLBACK_WARNED = True
                warnings.warn(
                    "process pool unavailable "
                    f"({type(exc).__name__}: {exc}); computing batch "
                    "distributions in-process (counted in pool_fallbacks)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return [
                self.device.noisy_distribution(job.circuit) for job in jobs
            ]

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Channel-cache and simulation-cache counters, merged flat.

        Channel-cache keys are unprefixed (``hits``/``misses``/...);
        simulation-cache keys carry their level's prefix
        (``dist_*``/``prefix_*``/``lower_*``) so the executor can diff
        each level independently.
        """
        cache = self.device.channel_cache
        if cache is None:
            stats = {
                "hits": 0,
                "misses": 0,
                "entries": 0,
                "evictions": 0,
                "invalidations": 0,
            }
        else:
            stats = cache.stats()
        sim = getattr(self.device, "sim_cache", None)
        if sim is not None:
            stats.update(sim.stats())
        stats["pool_fallbacks"] = self.pool_fallbacks
        return stats
