"""Execution backends: where jobs actually run.

:class:`Backend` is the protocol the :class:`~repro.exec.executor.
BatchExecutor` drives; :class:`LocalBackend` implements it on top of the
in-process :class:`~repro.device.device.RigettiAspenDevice`. The seam is
deliberately narrow — submit jobs, get counts — so later PRs can slot in
remote/queued backends (the paper ran on Amazon Braket) or shard across
several simulated chips without touching the algorithm layer.

``LocalBackend`` offers two batch disciplines:

* *sequential* — jobs run strictly one after another through
  ``device.run``; the device clock advances (and noise drifts) between
  jobs exactly as in the paper's probing loop. Bit-identical to calling
  the device directly.
* *parallel* — all jobs' exact output distributions are computed against
  the device's **current parameter snapshot**, then sampled and
  accounted job-by-job. This mirrors a cloud batch submission where
  every circuit in the batch is compiled and run against one
  calibration snapshot. The clock/drift accounting sequence is
  identical to sequential execution (same advance calls in the same
  order), so the device *ends* in the same state; only the within-batch
  drift seen by later jobs differs.

The parallel discipline runs on a **persistent**
:class:`~repro.exec.pool.WorkerPool` owned by the backend: workers are
spawned once, hold long-lived device replicas with their own cache
hierarchies, and are kept coherent through epoch-delta synchronization
— so pooled counts are bit-identical to computing the same snapshot
distributions in-process (``max_workers=1``, or any environment where
process pools are unavailable and the backend degrades in-process).
"""

from __future__ import annotations

import warnings
from pickle import PicklingError
from typing import Dict, List, Optional, Protocol, Sequence, TYPE_CHECKING

import numpy as np

from ..obs import runtime as obs
from ..sim.sampler import sample_distribution
from .job import Job, JobResult
from .pool import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..device.device import RigettiAspenDevice

__all__ = ["Backend", "LocalBackend"]

#: Pool-infrastructure failures that degrade to in-process computation.
#: Anything else is a real simulation error and propagates.
_POOL_ENVIRONMENT_ERRORS = (
    OSError,
    EOFError,
    PicklingError,
    ImportError,
)


class Backend(Protocol):
    """Anything that can turn Jobs into JobResults."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol
        ...

    def submit(self, job: Job) -> JobResult:  # pragma: no cover - protocol
        ...

    def submit_batch(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[JobResult]:  # pragma: no cover - protocol
        ...


class LocalBackend:
    """A Backend wrapping the in-process simulated Aspen device.

    Args:
        device: The device jobs run on.
        affinity: Group prefix-sharing parallel jobs onto the same pool
            worker (see :class:`~repro.exec.pool.WorkerPool`); off falls
            back to round-robin scheduling.
    """

    def __init__(
        self, device: "RigettiAspenDevice", affinity: bool = True
    ) -> None:
        self.device = device
        self.affinity = affinity
        #: Parallel batches that fell back to in-process computation
        #: because a worker pool could not be created or fed.
        self.pool_fallbacks = 0
        #: Times a worker pool was spawned for this backend (the
        #: persistence contract: one spawn per backend per sweep unless
        #: the pool is closed or resized in between).
        self.pool_spawns = 0
        self._pool: Optional[WorkerPool] = None
        # One-shot fallback warning, per backend instance; reset on
        # pool (re)creation so a rebuilt pool that degrades warns again.
        self._pool_warned = False
        # Harvested pool accounting; survives pool close/rebuild so the
        # executor's before/after diffs never go backwards.
        self._affinity_hits = 0
        self._ship_bytes = 0
        self._worker_cache_totals: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return f"local[{self.device.name}]"

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> Optional[WorkerPool]:
        """The live worker pool, if one has been spawned."""
        if self._pool is not None and self._pool.closed:
            self._pool = None
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later parallel
        batch lazily rebuilds it)."""
        if self._pool is not None:
            self._ship_bytes += self._pool.ship_bytes
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "LocalBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self, max_workers: Optional[int]) -> WorkerPool:
        """The persistent pool, created lazily and reused across
        batches; rebuilt only when closed or explicitly resized."""
        pool = self.pool
        if pool is not None and (
            max_workers is None or max_workers == pool.num_workers
        ):
            return pool
        self.close()
        pool = WorkerPool(
            self.device, num_workers=max_workers, affinity=self.affinity
        )
        self._pool = pool
        self.pool_spawns += 1
        self._pool_warned = False
        return pool

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobResult:
        """Run one job through ``device.run`` (clock advances after it)."""
        tracer = obs.active_tracer()
        span = (
            tracer.span(
                "backend.job",
                job_id=job.job_id,
                tag=job.tag or "untagged",
                shots=job.shots,
            )
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            before = self._trace_cache_counters() if tracer else None
            counts = self.device.run(
                job.circuit,
                job.shots,
                seed=job.seed,
                job_id=job.job_id,
                tag=job.tag,
            )
            record = self.device.execution_log[-1]
            if tracer:
                after = self._trace_cache_counters()
                span.set(
                    duration_us=record.duration_us,
                    started_at_us=record.started_at_us,
                    cache_hits_delta=after[0] - before[0],
                    cache_misses_delta=after[1] - before[1],
                    sim_dist_hits_delta=after[2] - before[2],
                    sim_prefix_hits_delta=after[3] - before[3],
                )
        return JobResult(
            job_id=job.job_id,
            counts=counts,
            shots=job.shots,
            tag=job.tag,
            seed=job.seed,
            started_at_us=record.started_at_us,
            duration_us=record.duration_us,
            qubits=record.qubits,
        )

    def _trace_cache_counters(self):
        """(channel hits, channel misses, dist hits, prefix hits) — the
        per-job cache attribution sampled around a traced submission."""
        cache = self.device.channel_cache
        hits = misses = dist_hits = prefix_hits = 0
        if cache is not None:
            hits, misses = cache.hits, cache.misses
        sim = getattr(self.device, "sim_cache", None)
        if sim is not None:
            stats = sim.stats()
            dist_hits = stats.get("dist_hits", 0)
            prefix_hits = stats.get("prefix_hits", 0)
        return (hits, misses, dist_hits, prefix_hits)

    def submit_batch(
        self,
        jobs: Sequence[Job],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[JobResult]:
        if not jobs:
            return []
        if not parallel or len(jobs) == 1:
            return [self.submit(job) for job in jobs]
        tracer = obs.active_tracer()
        span = (
            tracer.span("backend.snapshot_batch", jobs=len(jobs))
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            distributions = self._batch_distributions(jobs, max_workers)
        results: List[JobResult] = []
        for job, distribution in zip(jobs, distributions):
            rng = (
                np.random.default_rng(job.seed)
                if job.seed is not None
                else self.device.sample_rng
            )
            counts = sample_distribution(distribution, job.shots, rng)
            record = self.device.log_execution(
                job.circuit,
                job.shots,
                seed=job.seed,
                job_id=job.job_id,
                tag=job.tag,
            )
            if tracer:
                # Snapshot batches compute distributions collectively
                # (in the pool span above); still emit one span per job
                # so a trace covers every probe regardless of mode.
                with tracer.span(
                    "backend.job",
                    job_id=job.job_id,
                    tag=job.tag or "untagged",
                    shots=job.shots,
                ) as job_span:
                    job_span.set(
                        duration_us=record.duration_us,
                        started_at_us=record.started_at_us,
                        snapshot_batch=True,
                    )
            results.append(
                JobResult(
                    job_id=job.job_id,
                    counts=counts,
                    shots=job.shots,
                    tag=job.tag,
                    seed=job.seed,
                    started_at_us=record.started_at_us,
                    duration_us=record.duration_us,
                    qubits=record.qubits,
                )
            )
        return results

    def submit_batch_grouped(
        self,
        groups: Sequence[Sequence[Job]],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[List[JobResult]]:
        """Run several job groups as one merged batch, demuxed per group.

        Jobs execute in the flattened submission order, so the device
        clock/drift trajectory matches submitting the groups back to
        back; the merge only changes batching granularity (one snapshot
        round / one pool dispatch instead of several).
        """
        groups = [list(group) for group in groups]
        flat = [job for group in groups for job in group]
        results = self.submit_batch(
            flat, parallel=parallel, max_workers=max_workers
        )
        demuxed: List[List[JobResult]] = []
        offset = 0
        for group in groups:
            demuxed.append(results[offset : offset + len(group)])
            offset += len(group)
        return demuxed

    def _batch_distributions(
        self, jobs: Sequence[Job], max_workers: Optional[int]
    ) -> List[Dict[str, float]]:
        """Exact distributions for all jobs against the current snapshot.

        Dispatches to the persistent worker pool (density-matrix jobs
        are CPU-bound and independent); computes in-process when a
        single worker is requested, or when pools are unavailable
        (restricted environments) — both paths are bit-identical by the
        epoch-delta synchronization contract.
        """
        if max_workers is not None and max_workers < 2:
            return self.device.noisy_distribution_batch(
                [job.circuit for job in jobs]
            )
        try:
            pool = self._ensure_pool(max_workers)
            distributions, info = pool.run([job.circuit for job in jobs])
        except _POOL_ENVIRONMENT_ERRORS as exc:
            # Pool creation/feeding can fail in sandboxed environments;
            # the snapshot semantics do not depend on parallelism. Any
            # other exception is a real simulation error and propagates.
            self.close()
            self.pool_fallbacks += 1
            obs.event("pool.fallback", error=type(exc).__name__)
            if not self._pool_warned:
                self._pool_warned = True
                warnings.warn(
                    "worker pool unavailable "
                    f"({type(exc).__name__}: {exc}); computing batch "
                    "distributions in-process (counted in pool_fallbacks)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return self.device.noisy_distribution_batch(
                [job.circuit for job in jobs]
            )
        self._affinity_hits += info.affinity_hits
        self._ship_bytes += info.ship_bytes
        for key, value in info.cache_deltas.items():
            self._worker_cache_totals[key] = (
                self._worker_cache_totals.get(key, 0) + value
            )
        return distributions

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Channel-cache, simulation-cache, and pool counters, merged.

        Channel-cache keys are unprefixed (``hits``/``misses``/...);
        simulation-cache keys carry their level's prefix
        (``dist_*``/``prefix_*``/``lower_*``) so the executor can diff
        each level independently. Worker-side counters harvested from
        the pool are *added* into the same keys — a prefix hit inside a
        worker is a prefix hit — and the pool itself contributes
        ``workers`` (gauge), ``affinity_hits``, and ``ship_bytes``.
        """
        cache = self.device.channel_cache
        if cache is None:
            stats = {
                "hits": 0,
                "misses": 0,
                "entries": 0,
                "evictions": 0,
                "invalidations": 0,
            }
        else:
            stats = cache.stats()
        sim = getattr(self.device, "sim_cache", None)
        if sim is not None:
            stats.update(sim.stats())
        stats["clifford_fast_hits"] = getattr(
            self.device, "clifford_fast_hits", 0
        )
        stats["clifford_fallbacks"] = getattr(
            self.device, "clifford_fallbacks", 0
        )
        for key, value in self._worker_cache_totals.items():
            stats[key] = stats.get(key, 0) + value
        pool = self.pool
        live_ship = pool.ship_bytes if pool is not None else 0
        stats["workers"] = pool.num_workers if pool is not None else 0
        stats["affinity_hits"] = self._affinity_hits
        stats["ship_bytes"] = self._ship_bytes + live_ship
        stats["pool_spawns"] = self.pool_spawns
        stats["pool_fallbacks"] = self.pool_fallbacks
        return stats
