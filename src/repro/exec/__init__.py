"""Execution service: the seam between algorithms and hardware.

Everything that runs a circuit on the (simulated) device goes through
this package: algorithms build :class:`Job` objects, a
:class:`BatchExecutor` stamps ids and keeps :class:`ExecutorStats`, and a
:class:`Backend` (here :class:`LocalBackend`) turns jobs into
:class:`JobResult` counts. See ``docs/architecture.md`` for the layering
and how it maps onto the paper's Fig. 11 flow.
"""

from .backend import Backend, LocalBackend
from .executor import BatchExecutor, ExecutorStats, get_executor
from .job import Job, JobResult
from .pool import WorkerPool, default_max_workers

__all__ = [
    "Backend",
    "LocalBackend",
    "Job",
    "JobResult",
    "BatchExecutor",
    "ExecutorStats",
    "WorkerPool",
    "default_max_workers",
    "get_executor",
]
