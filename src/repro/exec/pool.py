"""A persistent, cache-aware worker pool for parallel batch execution.

The previous parallel path spun up a fresh ``ProcessPoolExecutor`` per
batch: the whole device was re-pickled into every worker each time, and
any channel/simulation-cache state a worker built was thrown away on
teardown — the PR 3 cache hierarchy only ever warmed in the parent.
:class:`WorkerPool` fixes all three costs at once:

* **Persistence** — workers are spawned once (lazily, on the first
  parallel batch) and live until :meth:`close`, the owning backend is
  garbage-collected, or interpreter exit (``weakref.finalize`` doubles
  as the atexit safety net). Each worker holds a long-lived device
  replica whose ChannelCache / SimulationCache warm across batches.
* **Epoch-delta synchronization** — instead of re-pickling the device
  per batch, the pool ships each worker only the parent's current
  ``drift_epoch`` plus the noise-parameter values that changed since
  that worker last synced (:meth:`~repro.device.device.
  RigettiAspenDevice.parameter_delta`). Workers apply the delta through
  :meth:`~repro.device.device.RigettiAspenDevice.
  apply_parameter_state`, which invalidates their caches exactly as the
  in-process ``advance_time`` contract does — a worker can never serve
  a stale-epoch distribution, and pooled counts stay bit-identical to
  the off-pool snapshot path.
* **Prefix-affinity scheduling** — jobs are grouped by their
  :func:`~repro.sim.circuit_compiler.instruction_hash_chain` so
  candidates sharing a CopyCat prefix (localized search's
  mass-replacement candidates differ at one link's sites) land on the
  same worker, where the worker's own
  :class:`~repro.sim.sim_cache.PrefixStateCache` replays the shared
  prefix once. Dispatch is chunked — one message per worker per batch —
  to amortize IPC; with affinity off, assignment falls back to
  round-robin.

The protocol is deliberately tiny: length-prefixed pickles over one
``multiprocessing.Pipe`` per worker. The pool counts every byte it
ships (``ship_bytes``) and harvests each worker's cache counters with
every reply, so ``--stats`` can show whether affinity is actually
paying.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..obs import runtime as obs
from ..sim.circuit_compiler import instruction_hash_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuit.circuit import QuantumCircuit
    from ..device.device import RigettiAspenDevice

__all__ = ["WorkerPool", "PoolRunInfo", "default_max_workers"]

#: Fraction of a job's chain that must match its predecessor on the
#: same worker for the placement to count as an affinity hit.
_AFFINITY_HIT_FRACTION = 0.5

#: Worker cache counters that are monotonic and therefore safe to
#: harvest as deltas into the parent's merged cache statistics. Gauges
#: (entry counts, resident bytes, epochs) are deliberately excluded.
_MONOTONIC_COUNTERS = (
    "hits",
    "misses",
    "evictions",
    "invalidations",
    "dist_hits",
    "dist_misses",
    "dist_evictions",
    "lower_hits",
    "lower_misses",
    "ops_replayed",
    "ops_skipped",
    "prefix_hits",
    "prefix_misses",
    "prefix_stores",
    "prefix_evictions",
    "sim_invalidations",
    "batch_dedup_hits",
    "batch_groups",
    "batch_candidates",
    "clifford_fast_hits",
    "clifford_fallbacks",
)


def default_max_workers() -> int:
    """Pool size when the caller does not pin one (capped: probe
    batches are small and the contraction kernel is memory-bound)."""
    return max(1, min(4, os.cpu_count() or 1))


class PoolRunInfo:
    """Per-batch accounting handed back to the owning backend.

    Attributes:
        affinity_hits: Jobs placed on a worker right after a job sharing
            at least half their instruction-prefix chain.
        ship_bytes: Bytes pickled and shipped to workers for this batch
            (sync deltas + chunked circuit payloads).
        cache_deltas: Summed monotonic cache-counter deltas harvested
            from the workers that ran this batch.
        epochs: Drift epoch each participating worker reported after
            computing — by construction all equal to the parent's epoch
            at dispatch time.
    """

    def __init__(self) -> None:
        self.affinity_hits = 0
        self.ship_bytes = 0
        self.cache_deltas: Dict[str, int] = {}
        self.epochs: List[int] = []


class _Worker:
    """Parent-side handle: a process, its pipe, and its sync state."""

    def __init__(self, process, connection, synced_state, synced_epoch):
        self.process = process
        self.connection = connection
        self.synced_state: Dict[Tuple, float] = synced_state
        self.synced_epoch: int = synced_epoch
        self.last_counters: Dict[str, int] = {}


class WorkerPool:
    """Persistent device-replica workers behind a LocalBackend.

    Args:
        device: The parent device; pickled once per worker at spawn
            (cache contents are stripped by the device's ``__getstate__``,
            so the payload is parameters + topology, not memo tables).
        num_workers: Pool size (``None`` = :func:`default_max_workers`).
        affinity: Group prefix-sharing jobs onto the same worker
            (otherwise round-robin).
    """

    def __init__(
        self,
        device: "RigettiAspenDevice",
        num_workers: Optional[int] = None,
        affinity: bool = True,
    ) -> None:
        self.device = device
        self.num_workers = int(num_workers or default_max_workers())
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.affinity = affinity
        self.ship_bytes = 0  # spawn payloads; per-batch bytes in RunInfo
        self.last_sync_epoch = device.drift_epoch
        self._closed = False
        context = multiprocessing.get_context()
        payload = pickle.dumps(device, protocol=pickle.HIGHEST_PROTOCOL)
        state = device.parameter_state()
        self._workers: List[_Worker] = []
        processes, connections = [], []
        try:
            for _ in range(self.num_workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_pool_worker_main,
                    args=(child_conn, payload),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.ship_bytes += len(payload)
                processes.append(process)
                connections.append(parent_conn)
                self._workers.append(
                    _Worker(
                        process,
                        parent_conn,
                        dict(state),
                        device.drift_epoch,
                    )
                )
        except BaseException:
            _shutdown_workers(processes, connections)
            raise
        # atexit + GC safety: tears the processes down even if close()
        # is never called (registered on the lists, not the pool, so
        # the finalizer holds no reference that would keep it alive).
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, processes, connections
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed or not self._finalizer.alive

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(
        self, circuits: Sequence["QuantumCircuit"]
    ) -> Tuple[List[Dict[str, float]], PoolRunInfo]:
        """Exact distributions for *circuits* against the parent's
        current parameter snapshot, computed across the pool.

        Results come back in submission order regardless of scheduling.
        Raises whatever a worker's simulation raised; infrastructure
        failures (dead worker, broken pipe) surface as ``OSError`` /
        ``EOFError`` for the backend's fallback to catch.
        """
        if self.closed:
            raise OSError("worker pool is closed")
        info = PoolRunInfo()
        if not circuits:
            return [], info
        tracer = obs.active_tracer()
        epoch = self.device.drift_epoch
        state = self.device.parameter_state()
        assignment, info.affinity_hits = self._assign(circuits)
        self.last_sync_epoch = epoch
        busy: List[Tuple[_Worker, List[int]]] = []
        for slot, (worker, indices) in enumerate(
            zip(self._workers, assignment)
        ):
            if not indices:
                continue
            delta = {
                key: value
                for key, value in state.items()
                if worker.synced_state.get(key) != value
            }
            dispatch_span = (
                tracer.span(
                    "pool.dispatch",
                    worker=slot,
                    jobs=len(indices),
                    epoch=epoch,
                    delta_params=len(delta),
                )
                if tracer
                else obs.NULL_SPAN
            )
            with dispatch_span:
                message = pickle.dumps(
                    ("run", epoch, delta, [circuits[i] for i in indices]),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                worker.connection.send_bytes(message)
                if tracer:
                    dispatch_span.set(ship_bytes=len(message))
            info.ship_bytes += len(message)
            worker.synced_state = dict(state)
            worker.synced_epoch = epoch
            busy.append((slot, worker, indices))
        if tracer and info.affinity_hits:
            tracer.event(
                "pool.affinity",
                hits=info.affinity_hits,
                jobs=len(circuits),
            )
        distributions: List[Optional[Dict[str, float]]] = [None] * len(
            circuits
        )
        error: Optional[BaseException] = None
        for slot, worker, indices in busy:
            reply = pickle.loads(worker.connection.recv_bytes())
            if reply[0] == "error":
                # Drain the remaining replies before raising so the
                # pool stays usable for the next batch.
                error = error or reply[1]
                if tracer:
                    tracer.event(
                        "pool.worker_error",
                        worker=slot,
                        error=type(reply[1]).__name__,
                    )
                continue
            _, results, counters, worker_epoch = reply
            info.epochs.append(worker_epoch)
            if tracer:
                tracer.event(
                    "pool.reply",
                    worker=slot,
                    jobs=len(indices),
                    epoch=worker_epoch,
                )
            for index, distribution in zip(indices, results):
                distributions[index] = distribution
            for key, value in counters.items():
                previous = worker.last_counters.get(key, 0)
                info.cache_deltas[key] = (
                    info.cache_deltas.get(key, 0) + value - previous
                )
            worker.last_counters = dict(counters)
        if error is not None:
            raise error
        return list(distributions), info  # type: ignore[arg-type]

    def run_groups(
        self, groups: Sequence[Sequence["QuantumCircuit"]]
    ) -> Tuple[List[List[Dict[str, float]]], PoolRunInfo]:
        """Dispatch the union of several circuit groups in one pool round.

        The merged batch is assigned to workers as a whole — so the
        prefix-affinity scheduler can co-locate prefix-sharing circuits
        *across* groups, which separate :meth:`run` calls cannot — and
        the distributions are demuxed back to the source groups in
        submission order.
        """
        groups = [list(group) for group in groups]
        flat = [circuit for group in groups for circuit in group]
        distributions, info = self.run(flat)
        demuxed: List[List[Dict[str, float]]] = []
        offset = 0
        for group in groups:
            demuxed.append(distributions[offset : offset + len(group)])
            offset += len(group)
        return demuxed, info

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _assign(
        self, circuits: Sequence["QuantumCircuit"]
    ) -> Tuple[List[List[int]], int]:
        """Job indices per worker, plus the affinity-hit count.

        With affinity on, jobs are ordered by their instruction-hash
        chains — prefix-sharing candidates become lexicographic
        neighbours — and split into contiguous chunks balanced by chain
        length, one chunk per worker. Off (or trivially small batches),
        round-robin.
        """
        count = len(circuits)
        chunks: List[List[int]] = [[] for _ in range(self.num_workers)]
        if not self.affinity or count <= 1 or self.num_workers == 1:
            for index in range(count):
                chunks[index % self.num_workers].append(index)
            return chunks, 0
        chains = [instruction_hash_chain(c) for c in circuits]
        order = sorted(range(count), key=lambda i: chains[i])
        total = sum(max(1, len(chains[i])) for i in order)
        accumulated = 0
        for index in order:
            slot = min(
                self.num_workers - 1,
                self.num_workers * accumulated // total,
            )
            chunks[slot].append(index)
            accumulated += max(1, len(chains[index]))
        hits = 0
        for chunk in chunks:
            for previous, current in zip(chunk, chunk[1:]):
                shared = _common_prefix(chains[previous], chains[current])
                if shared >= _AFFINITY_HIT_FRACTION * max(
                    1, len(chains[current])
                ):
                    hits += 1
        return chunks, hits


def _common_prefix(a: Tuple[bytes, ...], b: Tuple[bytes, ...]) -> int:
    """Length of the shared instruction prefix of two hash chains."""
    shared = 0
    for left, right in zip(a, b):
        if left != right:
            break
        shared += 1
    return shared


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_counters(device: "RigettiAspenDevice") -> Dict[str, int]:
    """This replica's cumulative cache counters (monotonic keys only)."""
    merged: Dict[str, int] = {}
    if device.channel_cache is not None:
        merged.update(device.channel_cache.stats())
    if device.sim_cache is not None:
        merged.update(device.sim_cache.stats())
    merged["clifford_fast_hits"] = getattr(device, "clifford_fast_hits", 0)
    merged["clifford_fallbacks"] = getattr(device, "clifford_fallbacks", 0)
    return {
        key: int(merged[key]) for key in _MONOTONIC_COUNTERS if key in merged
    }


def _pool_worker_main(connection, payload: bytes) -> None:  # pragma: no cover
    """Worker loop: sync the epoch delta, compute distributions, reply.

    Runs in the child process (excluded from parent-side coverage).
    Simulation errors are reported back and the loop continues; a
    corrupt pipe or unpicklable reply tears the worker down, which the
    parent observes as EOF and degrades gracefully.
    """
    device: "RigettiAspenDevice" = pickle.loads(payload)
    while True:
        try:
            message = pickle.loads(connection.recv_bytes())
        except (EOFError, OSError):
            break
        if message[0] == "close":
            break
        try:
            _, epoch, delta, circuits = message
            device.apply_parameter_state(epoch, delta)
            results = device.noisy_distribution_batch(circuits)
            reply = (
                "ok",
                results,
                _worker_counters(device),
                device.drift_epoch,
            )
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            try:
                reply = ("error", exc)
                pickle.dumps(reply)
            except Exception:
                reply = ("error", RuntimeError(repr(exc)))
        try:
            connection.send_bytes(
                pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except (BrokenPipeError, OSError):
            break
    connection.close()


def _shutdown_workers(processes, connections) -> None:
    """Best-effort teardown shared by close(), GC, and atexit."""
    for connection in connections:
        try:
            connection.send_bytes(
                pickle.dumps(("close",), protocol=pickle.HIGHEST_PROTOCOL)
            )
        except Exception:
            pass
    for connection in connections:
        try:
            connection.close()
        except Exception:
            pass
    for process in processes:
        process.join(timeout=1.0)
    for process in processes:
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
