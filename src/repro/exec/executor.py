"""The BatchExecutor: instrumented job dispatch above any Backend.

This is the single choke point between the algorithm layer (ANGEL,
CDR, calibration, experiments, CLI) and whatever actually runs circuits.
Every submission gets a job id, a workload tag, and a line in the
:class:`ExecutorStats` ledger, so a run can answer "how many probe shots
did gate selection cost, and how much simulated device time did they
burn?" without grepping the device log.

Modes:

* ``"sequential"`` (default) — jobs in a batch run one at a time through
  the backend. With :class:`~repro.exec.backend.LocalBackend` this is
  bit-identical to the pre-executor ``device.run`` loop, which is what
  the paper-reproduction tests pin.
* ``"parallel"`` — batches are handed to the backend's parallel path
  (snapshot distributions on a process pool, then per-job sampling and
  clock accounting). Same end-of-batch device state, faster wall clock.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..exceptions import ExecutionError
from ..obs import runtime as obs
from .backend import Backend, LocalBackend
from .job import Job, JobResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..device.device import RigettiAspenDevice

__all__ = ["ExecutorStats", "BatchExecutor", "get_executor"]

_MODES = ("sequential", "parallel")


@dataclass
class ExecutorStats:
    """Cumulative accounting for one executor.

    ``device_time_us`` is *simulated* device occupancy (the clock the
    drift model sees); ``wall_time_s`` is real host time spent inside
    ``submit``/``submit_batch`` calls.
    """

    jobs: int = 0
    batches: int = 0
    shots: int = 0
    device_time_us: float = 0.0
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Simulation-cache hierarchy counters (distribution memo hits skip
    #: simulation entirely; prefix hits replay a cached state snapshot).
    sim_dist_hits: int = 0
    sim_dist_misses: int = 0
    sim_prefix_hits: int = 0
    sim_prefix_misses: int = 0
    #: Gauge: prefix-snapshot bytes resident after the latest batch.
    sim_prefix_bytes: int = 0
    #: Cross-request dedup: distributions served from / published to a
    #: shared :class:`~repro.service.dedup.ProbeDistributionStore`.
    #: Distinct from ``sim_dist_hits`` — those are *same-request* memo
    #: hits inside one device's own cache; shared hits were computed by
    #: a different request at the identical physics state.
    sim_shared_hits: int = 0
    sim_shared_publishes: int = 0
    #: Transient-fault resubmissions performed by a resilient backend.
    retries: int = 0
    #: Jobs that failed permanently (retry budget/deadline/breaker).
    job_failures: int = 0
    #: Circuit-breaker trips observed at the backend.
    breaker_trips: int = 0
    #: Search-level degradations: links whose probe jobs failed and fell
    #: back to the calibration-fidelity choice (recorded by ANGEL).
    fallbacks: int = 0
    #: Parallel batches that lost their process pool and degraded to
    #: in-process computation (LocalBackend).
    pool_fallbacks: int = 0
    #: Gauge: live worker-pool size after the latest batch (0 = no pool).
    workers: int = 0
    #: Jobs the prefix-affinity scheduler placed next to a job sharing
    #: at least half their instruction prefix on the same worker.
    affinity_hits: int = 0
    #: Bytes shipped to pool workers (spawn payloads + epoch deltas +
    #: chunked circuit dispatch) — the IPC cost parallelism paid.
    ship_bytes: int = 0
    #: Probe batches that were merged into a larger submission via
    #: ``submit_grouped`` (counts source groups, not merged batches).
    coalesced_groups: int = 0
    #: Identical candidate streams deduplicated inside grouped batches
    #: (simulated once, result fanned out to every duplicate).
    batch_dedup_hits: int = 0
    #: Candidate clusters the batched engine stacked (and how many
    #: candidates rode those stacked contractions in total).
    batch_groups: int = 0
    batch_candidates: int = 0
    #: Probes served by the Clifford stabilizer fast path, and probes
    #: that were checked but fell back to the dense engine.
    clifford_fast_hits: int = 0
    clifford_fallbacks: int = 0
    jobs_by_tag: Dict[str, int] = field(default_factory=dict)
    shots_by_tag: Dict[str, int] = field(default_factory=dict)
    wall_time_by_tag_s: Dict[str, float] = field(default_factory=dict)

    def record(
        self,
        results: Sequence[JobResult],
        wall_time_s: float,
        batch: bool,
    ) -> None:
        self.jobs += len(results)
        if batch:
            self.batches += 1
        self.wall_time_s += wall_time_s
        for result in results:
            self.shots += result.shots
            self.device_time_us += result.duration_us
            tag = result.tag or "untagged"
            self.jobs_by_tag[tag] = self.jobs_by_tag.get(tag, 0) + 1
            self.shots_by_tag[tag] = (
                self.shots_by_tag.get(tag, 0) + result.shots
            )
        if results:
            # Host time is attributed to the batch's (single) tag; mixed
            # batches charge the first tag, which never happens in practice.
            tag = results[0].tag or "untagged"
            self.wall_time_by_tag_s[tag] = (
                self.wall_time_by_tag_s.get(tag, 0.0) + wall_time_s
            )

    def snapshot(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "batches": self.batches,
            "shots": self.shots,
            "device_time_us": self.device_time_us,
            "wall_time_s": self.wall_time_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "sim_dist_hits": self.sim_dist_hits,
            "sim_dist_misses": self.sim_dist_misses,
            "sim_prefix_hits": self.sim_prefix_hits,
            "sim_prefix_misses": self.sim_prefix_misses,
            "sim_prefix_bytes": self.sim_prefix_bytes,
            "sim_shared_hits": self.sim_shared_hits,
            "sim_shared_publishes": self.sim_shared_publishes,
            "retries": self.retries,
            "job_failures": self.job_failures,
            "breaker_trips": self.breaker_trips,
            "fallbacks": self.fallbacks,
            "pool_fallbacks": self.pool_fallbacks,
            "workers": self.workers,
            "affinity_hits": self.affinity_hits,
            "ship_bytes": self.ship_bytes,
            "coalesced_groups": self.coalesced_groups,
            "batch_dedup_hits": self.batch_dedup_hits,
            "batch_groups": self.batch_groups,
            "batch_candidates": self.batch_candidates,
            "clifford_fast_hits": self.clifford_fast_hits,
            "clifford_fallbacks": self.clifford_fallbacks,
            "jobs_by_tag": dict(self.jobs_by_tag),
            "shots_by_tag": dict(self.shots_by_tag),
            "wall_time_by_tag_s": dict(self.wall_time_by_tag_s),
        }

    def to_text(self) -> str:
        lines = [
            f"jobs: {self.jobs} ({self.batches} batches), "
            f"shots: {self.shots}",
            f"device time: {self.device_time_us / 1e6:.3f} s simulated, "
            f"host time: {self.wall_time_s:.3f} s",
            f"channel cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses",
        ]
        if (
            self.sim_dist_hits
            or self.sim_dist_misses
            or self.sim_prefix_hits
            or self.sim_prefix_misses
        ):
            lines.append(
                f"sim cache: {self.sim_dist_hits} dist hits / "
                f"{self.sim_dist_misses} misses, "
                f"{self.sim_prefix_hits} prefix hits / "
                f"{self.sim_prefix_misses} misses "
                f"({self.sim_prefix_bytes / 1024:.0f} KiB resident)"
            )
        if self.sim_shared_hits or self.sim_shared_publishes:
            lines.append(
                f"probe dedup: {self.sim_shared_hits} cross-request hits, "
                f"{self.sim_shared_publishes} published"
            )
        if self.coalesced_groups:
            lines.append(
                f"coalescing: {self.coalesced_groups} probe batches merged"
            )
        if self.batch_groups or self.batch_dedup_hits:
            lines.append(
                f"batched sim: {self.batch_groups} stacked clusters "
                f"({self.batch_candidates} candidates), "
                f"{self.batch_dedup_hits} in-batch dedup hits"
            )
        if self.clifford_fast_hits or self.clifford_fallbacks:
            lines.append(
                f"clifford fast path: {self.clifford_fast_hits} hits, "
                f"{self.clifford_fallbacks} dense fallbacks"
            )
        if self.workers or self.affinity_hits or self.ship_bytes:
            lines.append(
                f"worker pool: {self.workers} workers, "
                f"{self.affinity_hits} affinity hits, "
                f"{self.ship_bytes / 1024:.0f} KiB shipped"
            )
        if (
            self.retries
            or self.job_failures
            or self.breaker_trips
            or self.fallbacks
            or self.pool_fallbacks
        ):
            lines.append(
                f"reliability: {self.retries} retries, "
                f"{self.job_failures} job failures, "
                f"{self.breaker_trips} breaker trips, "
                f"{self.fallbacks} degraded links, "
                f"{self.pool_fallbacks} pool fallbacks"
            )
        for tag in sorted(self.jobs_by_tag):
            lines.append(
                f"  {tag}: {self.jobs_by_tag[tag]} jobs, "
                f"{self.shots_by_tag.get(tag, 0)} shots, "
                f"{self.wall_time_by_tag_s.get(tag, 0.0):.3f} s host"
            )
        return "\n".join(lines)


class BatchExecutor:
    """Submit jobs (singly or in batches) through a Backend, with stats."""

    def __init__(
        self,
        backend: Backend,
        mode: str = "sequential",
        max_workers: Optional[int] = None,
    ) -> None:
        if mode not in _MODES:
            raise ExecutionError(
                f"unknown executor mode {mode!r}; expected one of {_MODES}"
            )
        self.backend = backend
        self.mode = mode
        self.max_workers = max_workers
        self.stats = ExecutorStats()
        self._counter = 0

    # ------------------------------------------------------------------
    def _next_id(self, tag: str) -> str:
        self._counter += 1
        return f"{tag or 'job'}-{self._counter:05d}"

    def _cache_counters(self) -> Dict[str, int]:
        probe = getattr(self.backend, "cache_stats", None)
        if probe is None:
            return {"hits": 0, "misses": 0}
        return probe()

    def _reliability_counters(self) -> Dict[str, int]:
        probe = getattr(self.backend, "reliability_stats", None)
        if probe is None:
            return {}
        return probe()

    def submit(self, job: Job) -> JobResult:
        """Run one job immediately; returns its result."""
        return self.submit_batch([job])[0]

    def submit_batch(
        self, jobs: Sequence[Job], allow_failures: bool = False
    ) -> List[Optional[JobResult]]:
        """Run a batch of jobs; results come back in submission order.

        With ``allow_failures`` and a backend that supports per-job
        failure reporting (``submit_batch_tolerant``, e.g. the remote
        backend), permanently failed jobs come back as ``None`` slots
        instead of raising — the caller decides how to degrade. Without
        it, a backend that cannot fail per-job (the local device) is
        submitted normally and every slot is a result.
        """
        if not jobs:
            return []
        jobs = [
            job if job.job_id else job.with_id(self._next_id(job.tag))
            for job in jobs
        ]
        tolerant = (
            getattr(self.backend, "submit_batch_tolerant", None)
            if allow_failures
            else None
        )
        tracer = obs.active_tracer()
        span = (
            tracer.span(
                "exec.batch",
                backend=self.backend.name,
                mode=self.mode,
                jobs=len(jobs),
                # Per-candidate histogram amortization: a grouped batch
                # collapses many candidates into few contractions, so
                # the wall-time histogram records per-unit time.
                units=len(jobs),
                tag=jobs[0].tag or "untagged",
            )
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            before = self._cache_counters()
            reliability_before = self._reliability_counters()
            start = time.perf_counter()
            submit = (
                tolerant if tolerant is not None else self.backend.submit_batch
            )
            results = submit(
                jobs,
                parallel=(self.mode == "parallel" and len(jobs) > 1),
                max_workers=self.max_workers,
            )
            elapsed = time.perf_counter() - start
            after = self._cache_counters()
            reliability_after = self._reliability_counters()
            completed = [result for result in results if result is not None]
            if tracer:
                span.set(
                    shots=sum(r.shots for r in completed),
                    device_time_job_us=sum(
                        r.duration_us for r in completed
                    ),
                    cache_hits_delta=after["hits"] - before["hits"],
                    cache_misses_delta=after["misses"] - before["misses"],
                    failed=len(results) - len(completed),
                )
        self.stats.record(completed, elapsed, batch=len(jobs) > 1)
        self.stats.cache_hits += after["hits"] - before["hits"]
        self.stats.cache_misses += after["misses"] - before["misses"]
        self.stats.sim_dist_hits += after.get("dist_hits", 0) - before.get(
            "dist_hits", 0
        )
        self.stats.sim_dist_misses += after.get(
            "dist_misses", 0
        ) - before.get("dist_misses", 0)
        self.stats.sim_prefix_hits += after.get(
            "prefix_hits", 0
        ) - before.get("prefix_hits", 0)
        self.stats.sim_prefix_misses += after.get(
            "prefix_misses", 0
        ) - before.get("prefix_misses", 0)
        self.stats.sim_prefix_bytes = after.get(
            "prefix_bytes", self.stats.sim_prefix_bytes
        )
        self.stats.sim_shared_hits += after.get(
            "dist_shared_hits", 0
        ) - before.get("dist_shared_hits", 0)
        self.stats.sim_shared_publishes += after.get(
            "dist_shared_publishes", 0
        ) - before.get("dist_shared_publishes", 0)
        self.stats.batch_dedup_hits += after.get(
            "batch_dedup_hits", 0
        ) - before.get("batch_dedup_hits", 0)
        self.stats.batch_groups += after.get(
            "batch_groups", 0
        ) - before.get("batch_groups", 0)
        self.stats.batch_candidates += after.get(
            "batch_candidates", 0
        ) - before.get("batch_candidates", 0)
        self.stats.clifford_fast_hits += after.get(
            "clifford_fast_hits", 0
        ) - before.get("clifford_fast_hits", 0)
        self.stats.clifford_fallbacks += after.get(
            "clifford_fallbacks", 0
        ) - before.get("clifford_fallbacks", 0)
        self.stats.pool_fallbacks += after.get(
            "pool_fallbacks", 0
        ) - before.get("pool_fallbacks", 0)
        self.stats.workers = after.get("workers", self.stats.workers)
        self.stats.affinity_hits += after.get(
            "affinity_hits", 0
        ) - before.get("affinity_hits", 0)
        self.stats.ship_bytes += after.get("ship_bytes", 0) - before.get(
            "ship_bytes", 0
        )
        self.stats.retries += reliability_after.get(
            "retries", 0
        ) - reliability_before.get("retries", 0)
        self.stats.job_failures += reliability_after.get(
            "failures", 0
        ) - reliability_before.get("failures", 0)
        self.stats.breaker_trips += reliability_after.get(
            "breaker_trips", 0
        ) - reliability_before.get("breaker_trips", 0)
        registry = obs.active_registry()
        if registry is not None:
            # Absorb the cumulative ledgers after every batch so the
            # registry is live, not just an end-of-run export.
            registry.ingest_executor(self.stats)
            registry.ingest_cache(after)
        return list(results)

    def submit_grouped(
        self,
        groups: Sequence[Sequence[Job]],
        allow_failures: bool = False,
    ) -> List[List[Optional[JobResult]]]:
        """Merge several job groups into one batch; demux per group.

        This is the coalescing seam the multi-tenant service uses: probe
        batches that would otherwise be separate submissions are merged
        into a single backend batch (one span, one service-window
        admission), then results are sliced back to the source groups in
        submission order. Jobs still execute in the flattened order, so
        for a sequential backend the device-state trajectory is
        bit-identical to submitting the groups one after another.
        """
        groups = [list(group) for group in groups]
        flat = [job for group in groups for job in group]
        if not flat:
            return [[] for _ in groups]
        results = self.submit_batch(flat, allow_failures=allow_failures)
        self.stats.coalesced_groups += sum(
            1 for group in groups if group
        )
        demuxed: List[List[Optional[JobResult]]] = []
        offset = 0
        for group in groups:
            demuxed.append(list(results[offset : offset + len(group)]))
            offset += len(group)
        return demuxed


# One executor per device so that every caller (ANGEL, CDR, calibration,
# experiments, CLI) shares a single stats ledger for the same hardware.
_EXECUTORS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def get_executor(device: "RigettiAspenDevice") -> BatchExecutor:
    """The shared sequential executor for ``device`` (created on demand)."""
    executor = _EXECUTORS.get(device)
    if executor is None:
        executor = BatchExecutor(LocalBackend(device))
        _EXECUTORS[device] = executor
    return executor
