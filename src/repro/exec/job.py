"""Jobs and job results — the currency of the execution service.

A :class:`Job` is one circuit-plus-shots submission; a :class:`JobResult`
is its counts plus the accounting the device recorded for it. Both are
frozen so they can be logged, compared, and shipped across process
boundaries without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..exceptions import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuit.circuit import QuantumCircuit

__all__ = ["Job", "JobResult"]


@dataclass(frozen=True)
class Job:
    """One unit of device work: a native circuit and a shot budget.

    Attributes:
        circuit: The native circuit to execute (physical qubit ids).
        shots: Number of shots to sample.
        seed: Sampling seed; ``None`` uses the device's own stream
            (matching a direct ``device.run`` call without a seed).
        tag: Workload phase this job belongs to ("probe", "final",
            "calibration", ...) — drives per-phase executor stats.
        job_id: Executor-assigned identifier; leave empty on submission.
    """

    circuit: "QuantumCircuit"
    shots: int
    seed: Optional[int] = None
    tag: str = ""
    job_id: str = ""

    def __post_init__(self) -> None:
        if self.shots < 1:
            raise ExecutionError("job shots must be positive")

    def with_id(self, job_id: str) -> "Job":
        return replace(self, job_id=job_id)


@dataclass(frozen=True)
class JobResult:
    """Counts plus device accounting for one executed job.

    Attributes:
        job_id / tag / shots / seed: Echoed from the job.
        counts: Big-endian bitstring -> shot count.
        started_at_us: Device clock when the job started.
        duration_us: Simulated wall time the job occupied the device.
        qubits: Physical qubits the job touched.
    """

    job_id: str
    counts: Dict[str, int]
    shots: int
    tag: str = ""
    seed: Optional[int] = None
    started_at_us: float = 0.0
    duration_us: float = 0.0
    qubits: Tuple[int, ...] = ()

    def distribution(self) -> Dict[str, float]:
        """The counts normalized to a probability distribution."""
        total = sum(self.counts.values())
        if total <= 0:
            raise ExecutionError(f"job {self.job_id!r} has empty counts")
        return {key: value / total for key, value in self.counts.items()}
