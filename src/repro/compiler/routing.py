"""SWAP routing: make every two-qubit gate act on a device link.

The router walks the mapped circuit in order, maintaining a dynamic
logical->physical assignment. When a two-qubit gate lands on non-adjacent
physical qubits it inserts SWAPs along a shortest path (optionally
weighted by calibrated link quality) until the operands are neighbors,
then emits the gate — the textbook greedy scheme the paper assumes as its
"scheduling and routing" stage (Section II-C). ANGEL itself is
routing-agnostic: it consumes whatever routed circuit comes out.

Measurements are re-emitted at the end through the *final* assignment so
output bit order always matches the logical program's measurement order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..device.calibration import CalibrationData
from ..device.topology import Topology, make_link
from ..exceptions import CompilationError
from .mapping import Layout

__all__ = ["RoutedCircuit", "route_circuit"]


@dataclass(frozen=True)
class RoutedCircuit:
    """Routing output.

    Attributes:
        circuit: Physical-qubit circuit; all two-qubit gates on links;
            measurements appended in logical order.
        initial_layout: The layout routing started from.
        final_physical: ``final_physical[logical]`` is where each logical
            qubit ended up after the inserted SWAPs.
        swap_count: SWAP instructions inserted.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_physical: Tuple[int, ...]
    swap_count: int


def _link_weights(
    topology: Topology, calibration: Optional[CalibrationData]
) -> Dict[Tuple[int, int], float]:
    """Edge weights for path search: -log(best calibrated fidelity)."""
    weights: Dict[Tuple[int, int], float] = {}
    for link in topology.links:
        weight = 1.0
        if calibration is not None:
            gates = calibration.gates_calibrated_on(link)
            if gates:
                best = max(
                    calibration.two_qubit_fidelity(link, g) for g in gates
                )
                weight = 1.0 + max(0.0, -math.log(max(best, 1e-6)))
        weights[link] = weight
    return weights


#: Upcoming two-qubit gates the lookahead strategy scores against.
_LOOKAHEAD_WINDOW = 5


def route_circuit(
    circuit: QuantumCircuit,
    topology: Topology,
    layout: Layout,
    calibration: Optional[CalibrationData] = None,
    strategy: str = "greedy",
) -> RoutedCircuit:
    """Route a logical circuit onto the topology starting from *layout*.

    Args:
        circuit: The logical program (may include measurements; they are
            collected and re-emitted at the end in logical order).
        topology: Target connectivity.
        layout: Initial logical->physical assignment.
        calibration: If given, SWAP paths prefer well-calibrated links
            (noise-adaptive routing); otherwise hop count decides.
        strategy: ``"greedy"`` moves the first operand along a shortest
            path (the default, and what the layout permutation search
            models). ``"lookahead"`` scores each candidate SWAP against
            the next few two-qubit gates (SABRE-style) and can avoid the
            greedy router's ping-ponging on interleaved gate patterns.

    Raises:
        CompilationError: If operands can never be adjacent (disconnected
            topology region), or on an unknown strategy.
    """
    if strategy not in ("greedy", "lookahead"):
        raise CompilationError(f"unknown routing strategy {strategy!r}")
    if len(layout) < circuit.num_qubits:
        raise CompilationError("layout narrower than the program")

    graph = nx.Graph()
    graph.add_nodes_from(topology.qubits)
    weights = _link_weights(topology, calibration)
    for link, weight in weights.items():
        graph.add_edge(*link, weight=weight)

    phys_of: Dict[int, int] = {
        logical: layout.phys(logical) for logical in range(circuit.num_qubits)
    }
    logical_of: Dict[int, int] = {p: l for l, p in phys_of.items()}

    width = max(topology.qubits) + 1
    routed = QuantumCircuit(width, name=circuit.name)
    measured_logical: List[int] = []
    swap_count = 0

    distance: Dict[int, Dict[int, int]] = {}
    two_qubit_schedule: List[Tuple[int, Tuple[int, int]]] = []
    if strategy == "lookahead":
        distance = {
            source: dict(lengths)
            for source, lengths in nx.all_pairs_shortest_path_length(graph)
        }
        two_qubit_schedule = [
            (index, (g.qubits[0], g.qubits[1]))
            for index, g in enumerate(circuit)
            if g.is_unitary and g.num_qubits == 2
        ]

    def apply_swap(phys_a: int, phys_b: int) -> None:
        nonlocal swap_count
        routed.append(Gate("swap", (phys_a, phys_b)))
        swap_count += 1
        la = logical_of.get(phys_a)
        lb = logical_of.get(phys_b)
        if la is not None:
            phys_of[la] = phys_b
        if lb is not None:
            phys_of[lb] = phys_a
        logical_of.pop(phys_a, None)
        logical_of.pop(phys_b, None)
        if la is not None:
            logical_of[phys_b] = la
        if lb is not None:
            logical_of[phys_a] = lb

    def lookahead_score(
        swap_pair: Tuple[int, int], upcoming: List[Tuple[int, int]]
    ) -> float:
        """Discounted sum of operand distances after a candidate swap."""
        trial = dict(phys_of)
        trial_logical = {p: l for l, p in trial.items()}
        la = trial_logical.get(swap_pair[0])
        lb = trial_logical.get(swap_pair[1])
        if la is not None:
            trial[la] = swap_pair[1]
        if lb is not None:
            trial[lb] = swap_pair[0]
        score = 0.0
        discount = 1.0
        for log_a, log_b in upcoming:
            hops = distance.get(trial[log_a], {}).get(trial[log_b])
            if hops is None:
                return math.inf  # disconnected: never pick this swap
            score += discount * hops
            discount *= 0.7
        return score

    def route_with_lookahead(gate: Gate, gate_index: int) -> None:
        nonlocal swap_count
        upcoming = [
            pair
            for index, pair in two_qubit_schedule
            if index >= gate_index
        ][:_LOOKAHEAD_WINDOW]
        safety = 0
        while not topology.has_link(
            phys_of[gate.qubits[0]], phys_of[gate.qubits[1]]
        ):
            best_pair: Optional[Tuple[int, int]] = None
            best_score = math.inf
            for logical in gate.qubits:
                phys = phys_of[logical]
                for neighbour in topology.neighbors(phys):
                    pair = (phys, neighbour)
                    score = lookahead_score(pair, upcoming)
                    if score < best_score - 1e-12 or (
                        abs(score - best_score) <= 1e-12
                        and best_pair is not None
                        and pair < best_pair
                    ):
                        best_pair = pair
                        best_score = score
            if best_pair is None:  # pragma: no cover - connected graphs
                raise CompilationError(f"cannot route {gate}")
            apply_swap(*best_pair)
            safety += 1
            if safety > 4 * topology.num_qubits:
                raise CompilationError(
                    f"lookahead routing did not converge for {gate}"
                )

    for gate_index, gate in enumerate(circuit):
        if gate.is_barrier:
            routed.barrier()
            continue
        if gate.is_measurement:
            if gate.qubits[0] not in measured_logical:
                measured_logical.append(gate.qubits[0])
            continue
        if gate.num_qubits == 1:
            routed.append(gate.remap([phys_of[q] for q in range(circuit.num_qubits)]))
            continue
        if gate.num_qubits != 2:
            raise CompilationError(f"cannot route {gate.num_qubits}-qubit gate")
        phys_a = phys_of[gate.qubits[0]]
        phys_b = phys_of[gate.qubits[1]]
        if not topology.has_link(phys_a, phys_b):
            if strategy == "lookahead":
                route_with_lookahead(gate, gate_index)
            else:
                try:
                    path = nx.shortest_path(
                        graph, phys_a, phys_b, weight="weight"
                    )
                except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                    raise CompilationError(
                        f"cannot route {gate}: no path {phys_a}->{phys_b}"
                    ) from exc
                # Swap the first operand along the path until adjacent.
                for hop in path[1:-1]:
                    apply_swap(phys_of[gate.qubits[0]], hop)
            phys_a = phys_of[gate.qubits[0]]
            phys_b = phys_of[gate.qubits[1]]
            if not topology.has_link(phys_a, phys_b):  # pragma: no cover
                raise CompilationError(f"routing failed to join {gate}")
        routed.append(
            Gate(gate.name, (phys_a, phys_b), gate.params)
        )

    if not measured_logical:
        measured_logical = list(range(circuit.num_qubits))
    for logical in measured_logical:
        routed.measure(phys_of[logical])

    final_physical = tuple(
        phys_of[logical] for logical in range(circuit.num_qubits)
    )
    return RoutedCircuit(
        circuit=routed,
        initial_layout=layout,
        final_physical=final_physical,
        swap_count=swap_count,
    )
