"""Qubit mapping: allocate physical qubits to program qubits.

Two layout strategies, mirroring the paper's compilation pipeline
(Fig. 2a, step 1):

* :func:`trivial_layout` — a BFS-connected region starting from a seed
  qubit, logical qubits assigned in BFS order. Deterministic and
  adequate for unit tests.
* :func:`noise_adaptive_layout` — the Murali-style noise-adaptive
  allocation the paper's baseline builds on: score every BFS region by
  the calibrated quality of its links and readout, weight physical
  qubits by how much the program uses each logical qubit, and take the
  best region.

Both return a :class:`Layout` mapping logical -> physical ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit
from ..device.calibration import CalibrationData
from ..device.device import RigettiAspenDevice
from ..device.topology import Topology, make_link
from ..exceptions import CompilationError

__all__ = ["Layout", "trivial_layout", "noise_adaptive_layout"]


@dataclass(frozen=True)
class Layout:
    """An injective map from logical qubits to physical qubit ids."""

    physical: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.physical)) != len(self.physical):
            raise CompilationError("layout assigns a physical qubit twice")

    def __len__(self) -> int:
        return len(self.physical)

    def phys(self, logical: int) -> int:
        return self.physical[logical]

    def logical_of(self) -> Dict[int, int]:
        return {phys: logical for logical, phys in enumerate(self.physical)}

    def as_mapping(self) -> List[int]:
        """For :meth:`QuantumCircuit.remap_qubits`."""
        return list(self.physical)


def _interaction_counts(circuit: QuantumCircuit) -> Dict[int, int]:
    """How many two-qubit gates touch each logical qubit."""
    counts: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    for gate in circuit.gates():
        if gate.is_two_qubit:
            for qubit in gate.qubits:
                counts[qubit] += 1
    return counts


def trivial_layout(
    circuit: QuantumCircuit,
    topology: Topology,
    seed_qubit: Optional[int] = None,
) -> Layout:
    """Assign logical qubits to a BFS region around *seed_qubit*."""
    seed = seed_qubit if seed_qubit is not None else topology.qubits[0]
    region = topology.connected_subgraph_qubits(seed, circuit.num_qubits)
    return Layout(tuple(region))


def _region_score(
    region: Sequence[int],
    device: RigettiAspenDevice,
    calibration: CalibrationData,
) -> float:
    """Average calibrated quality of a candidate region.

    Scores each in-region link by its best calibrated two-qubit fidelity
    and each qubit by readout fidelity; regions with no internal links
    score zero (they cannot host any two-qubit gate without routing out).
    """
    region_set = set(region)
    link_scores: List[float] = []
    for qubit_a in region:
        for qubit_b in device.topology.neighbors(qubit_a):
            if qubit_b in region_set and qubit_a < qubit_b:
                link = make_link(qubit_a, qubit_b)
                gates = calibration.gates_calibrated_on(link)
                if gates:
                    link_scores.append(
                        max(
                            calibration.two_qubit_fidelity(link, g)
                            for g in gates
                        )
                    )
    if not link_scores:
        return 0.0
    readout_scores = []
    for qubit in region:
        try:
            readout_scores.append(calibration.readout_fidelity(qubit))
        except Exception:
            readout_scores.append(1.0)
    link_avg = sum(link_scores) / len(link_scores)
    readout_avg = sum(readout_scores) / len(readout_scores)
    return link_avg * readout_avg


def _routing_cost(
    circuit: QuantumCircuit, topology: Topology, physical: Sequence[int]
) -> int:
    """SWAPs the greedy router would insert for this assignment.

    Cheap simulation of the router's behaviour: walk the two-qubit gates,
    move the first operand along shortest paths, count hops.
    """
    import networkx as nx

    graph = topology.graph()
    position = list(physical)
    swaps = 0
    for gate in circuit.gates():
        if not gate.is_two_qubit:
            continue
        a, b = gate.qubits
        if topology.has_link(position[a], position[b]):
            continue
        path = nx.shortest_path(graph, position[a], position[b])
        for hop in path[1:-1]:
            # Swap logical a one step along the path.
            if hop in position:
                other = position.index(hop)
                position[other] = position[a]
            position[a] = hop
            swaps += 1
    return swaps


def _best_permutation(
    circuit: QuantumCircuit,
    topology: Topology,
    region: Sequence[int],
) -> Tuple[int, ...]:
    """Exhaustive layout-permutation search within a region (width <= 5).

    Minimizes routed SWAP count — this is how toff_n3 lands on the
    paper's 9-CNOT, 2-link placement instead of a ping-ponging one.
    Deterministic tie-break on the permutation itself.
    """
    import itertools

    best: Optional[Tuple[int, ...]] = None
    best_cost = None
    for perm in itertools.permutations(region):
        cost = _routing_cost(circuit, topology, perm)
        if best_cost is None or cost < best_cost or (
            cost == best_cost and perm < best
        ):
            best = perm
            best_cost = cost
    assert best is not None
    return best


#: Widths up to this use exhaustive permutation search; larger programs
#: fall back to the degree/busyness heuristic (search is factorial).
_PERMUTATION_SEARCH_MAX_WIDTH = 5


def noise_adaptive_layout(
    circuit: QuantumCircuit,
    device: RigettiAspenDevice,
    calibration: CalibrationData,
) -> Layout:
    """Pick the best-calibrated connected region, then minimize SWAPs.

    Every active qubit seeds a BFS region of the program's width; the
    region with the highest calibrated score wins. Within the region, an
    exhaustive permutation search (width <= 5) finds the assignment with
    the fewest routed SWAPs; wider programs fall back to placing the
    most-interacting logical qubits on the highest-degree physical
    qubits.
    """
    width = circuit.num_qubits
    if width > device.topology.num_qubits:
        raise CompilationError(
            f"program needs {width} qubits, device has "
            f"{device.topology.num_qubits}"
        )
    use_permutations = width <= _PERMUTATION_SEARCH_MAX_WIDTH
    best_region: Optional[List[int]] = None
    best_key: Optional[Tuple[float, float]] = None
    best_perm: Optional[Tuple[int, ...]] = None
    for seed in device.topology.qubits:
        try:
            region = device.topology.connected_subgraph_qubits(seed, width)
        except Exception:
            continue
        score = _region_score(region, device, calibration)
        if use_permutations:
            perm = _best_permutation(circuit, device.topology, region)
            cost = _routing_cost(circuit, device.topology, perm)
        else:
            perm = None
            cost = 0
        # Fewer SWAPs beats a marginally better-calibrated region: every
        # routed SWAP costs three extra CNOTs.
        key = (float(cost), -score)
        if best_key is None or key < best_key:
            best_key = key
            best_region = region
            best_perm = perm
    if best_region is None:
        raise CompilationError("no connected region fits the program")

    if use_permutations and best_perm is not None:
        return Layout(best_perm)

    # Busy logical qubits -> well-connected physical qubits (within region).
    region_set = set(best_region)
    degree_in_region = {
        q: sum(1 for nb in device.topology.neighbors(q) if nb in region_set)
        for q in best_region
    }
    phys_by_degree = sorted(
        best_region, key=lambda q: (-degree_in_region[q], q)
    )
    interactions = _interaction_counts(circuit)
    logical_by_busyness = sorted(
        range(width), key=lambda q: (-interactions[q], q)
    )
    physical = [0] * width
    for logical, phys in zip(logical_by_busyness, phys_by_degree):
        physical[logical] = phys
    return Layout(tuple(physical))
