"""NISQ compilation pipeline: mapping, routing, scheduling, nativization.

The pipeline matches paper Fig. 2(a): (1) qubit mapping, (2) scheduling
and routing, (3) gate nativization — with nativization deliberately
factored so a native gate *selection* (from any policy, including ANGEL)
can be applied to the same routed program repeatedly.
"""

from .mapping import Layout, noise_adaptive_layout, trivial_layout
from .nativization import (
    CnotSite,
    extract_cnot_sites,
    nativize,
    single_qubit_native,
)
from .optimize import (
    OPTIMIZATION_LEVELS,
    CancelInversesPass,
    Fuse1qRunsPass,
    MergeRotationsPass,
    OptimizationReport,
    PassManager,
    TwoQubitRewritePass,
    cleanup_native_circuit,
    optimize_circuit,
)
from .passes import CompiledProgram, transpile
from .routing import RoutedCircuit, route_circuit
from .scheduling import ScheduleReport, asap_schedule, schedule_report

__all__ = [
    "OPTIMIZATION_LEVELS",
    "PassManager",
    "OptimizationReport",
    "CancelInversesPass",
    "MergeRotationsPass",
    "Fuse1qRunsPass",
    "TwoQubitRewritePass",
    "optimize_circuit",
    "cleanup_native_circuit",
    "Layout",
    "trivial_layout",
    "noise_adaptive_layout",
    "RoutedCircuit",
    "route_circuit",
    "ScheduleReport",
    "asap_schedule",
    "schedule_report",
    "CnotSite",
    "extract_cnot_sites",
    "nativize",
    "single_qubit_native",
    "CompiledProgram",
    "transpile",
]
