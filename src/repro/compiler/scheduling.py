"""ASAP scheduling and timing analysis of routed circuits.

Scheduling does not change semantics — it canonicalizes instruction order
into moment order and reports timing (duration, per-qubit idle time).
ANGEL operates on the scheduled-and-routed program (paper Fig. 10), and
the idle report feeds the device's duration accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import Moment, circuit_moments

__all__ = ["ScheduleReport", "asap_schedule", "schedule_report"]


@dataclass(frozen=True)
class ScheduleReport:
    """Timing summary of a scheduled circuit.

    Attributes:
        num_moments: Depth in moments.
        gates_per_moment: Instruction count per moment.
        busy_moments_per_qubit: For each qubit, moments in which it is
            acted on — the complement is idle time (ADAPT territory; we
            report it for completeness).
    """

    num_moments: int
    gates_per_moment: Tuple[int, ...]
    busy_moments_per_qubit: Dict[int, int]

    def idle_fraction(self, qubit: int) -> float:
        if self.num_moments == 0:
            return 0.0
        busy = self.busy_moments_per_qubit.get(qubit, 0)
        return 1.0 - busy / self.num_moments


def asap_schedule(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return the circuit with instructions re-emitted in moment order.

    The result is observationally identical (same DAG), but iteration
    order equals execution order, which simplifies CopyCat construction
    and experiment logging.
    """
    scheduled = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    placed = set()
    for moment in circuit_moments(circuit):
        for index, gate in moment.items:
            scheduled.append(gate)
            placed.add(index)
    # Barriers are dropped by the moment view; semantics preserved since
    # moment order already respects them.
    return scheduled


def schedule_report(circuit: QuantumCircuit) -> ScheduleReport:
    """Compute moment statistics for a circuit."""
    moments = circuit_moments(circuit)
    busy: Dict[int, int] = {}
    for moment in moments:
        for qubit in moment.qubits():
            busy[qubit] = busy.get(qubit, 0) + 1
    return ScheduleReport(
        num_moments=len(moments),
        gates_per_moment=tuple(len(m.items) for m in moments),
        busy_moments_per_qubit=busy,
    )
