"""Gate nativization: decompose a routed circuit into native gates.

This is the compilation stage ANGEL lives in (paper Fig. 10). The routed
circuit's CNOT-bearing instructions (`cnot` and `swap`, the latter costing
three CNOTs) define an ordered list of :class:`CnotSite`\\ s — the slots a
:class:`~repro.core.sequence.NativeGateSequence` assigns native gates to.
:func:`nativize` then rewrites the whole circuit into the Rigetti basis:

* single-qubit gates -> ``RZ`` / ``RX(k*pi/2)`` via exact identities;
* each CNOT site -> its assigned native-gate decomposition (Fig. 2c);
* already-native two-qubit gates pass through.

The same routed circuit nativized under different sequences yields the
candidate executables ANGEL races against each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..device.native_gates import (
    NativeGateSet,
    RIGETTI_NATIVE_GATES,
    cnot_decomposition,
    hadamard_native,
    u3_native,
)
from ..device.topology import Link, make_link
from ..exceptions import CompilationError

__all__ = ["CnotSite", "extract_cnot_sites", "nativize", "single_qubit_native"]

_HALF_PI = math.pi / 2.0


@dataclass(frozen=True)
class CnotSite:
    """One CNOT slot in a routed circuit.

    Attributes:
        index: Sequential site number (program order, SWAPs expanded).
        control / target: Physical qubit ids.
        origin: ``"program"`` for explicit CNOTs, ``"swap"`` for the
            three CNOTs a routed SWAP expands into.
    """

    index: int
    control: int
    target: int
    origin: str = "program"

    @property
    def link(self) -> Link:
        return make_link(self.control, self.target)


def extract_cnot_sites(circuit: QuantumCircuit) -> List[CnotSite]:
    """Enumerate the CNOT sites of a routed circuit, in program order.

    SWAPs contribute three sites on the same link with alternating
    direction (the standard CNOT-triple expansion).
    """
    sites: List[CnotSite] = []
    for gate in circuit:
        if gate.name == "cnot":
            sites.append(
                CnotSite(len(sites), gate.qubits[0], gate.qubits[1])
            )
        elif gate.name == "swap":
            a, b = gate.qubits
            for control, target in ((a, b), (b, a), (a, b)):
                sites.append(
                    CnotSite(len(sites), control, target, origin="swap")
                )
    return sites


def single_qubit_native(gate: Gate) -> List[Gate]:
    """Rewrite one single-qubit gate into {RZ, RX(k*pi/2)}.

    Exact up to global phase for the whole gate vocabulary.
    """
    qubit = gate.qubits[0]
    name = gate.name
    if name == "id":
        return []
    if name == "rz":
        return [gate]
    if name in ("z", "s", "sdg", "t", "tdg", "phase"):
        angle = {
            "z": math.pi,
            "s": _HALF_PI,
            "sdg": -_HALF_PI,
            "t": math.pi / 4.0,
            "tdg": -math.pi / 4.0,
        }.get(name)
        if angle is None:  # phase(lambda) == rz(lambda) up to global phase
            angle = gate.params[0]
        return [Gate("rz", (qubit,), (angle,))]
    if name == "x":
        return [Gate("rx", (qubit,), (math.pi,))]
    if name == "y":
        # Y = Z . X up to phase: apply X then Z.
        return [
            Gate("rx", (qubit,), (math.pi,)),
            Gate("rz", (qubit,), (math.pi,)),
        ]
    if name == "h":
        return hadamard_native(qubit)
    if name == "rx":
        angle = gate.params[0]
        ratio = angle / _HALF_PI
        if abs(ratio - round(ratio)) < 1e-9:
            if abs(angle) < 1e-12:
                return []
            return [gate]
        # Arbitrary RX via U3(theta, -pi/2, pi/2).
        return u3_native(angle, -_HALF_PI, _HALF_PI, qubit)
    if name == "ry":
        return u3_native(gate.params[0], 0.0, 0.0, qubit)
    if name == "u3":
        theta, phi, lam = gate.params
        return u3_native(theta, phi, lam, qubit)
    raise CompilationError(f"no nativization rule for 1q gate {gate.name!r}")


def nativize(
    circuit: QuantumCircuit,
    site_gates: Mapping[int, str],
    native_gates: NativeGateSet = RIGETTI_NATIVE_GATES,
    name_suffix: str = "",
) -> QuantumCircuit:
    """Rewrite a routed circuit into native gates.

    Args:
        circuit: The routed physical circuit (cnot/swap plus 1q gates,
            measurements, and possibly already-native 2q gates).
        site_gates: Native gate name per CNOT site index — normally
            ``sequence.as_site_map()`` from a
            :class:`~repro.core.sequence.NativeGateSequence`.
        native_gates: Target instruction set.
        name_suffix: Appended to the circuit name (e.g. the sequence
            label), so device logs identify which candidate ran.

    Raises:
        CompilationError: On a site index gap or an unsupported gate.
    """
    native = QuantumCircuit(
        circuit.num_qubits,
        name=circuit.name + name_suffix,
    )
    site_index = 0

    def assigned(index: int) -> str:
        try:
            return site_gates[index]
        except KeyError as exc:
            raise CompilationError(
                f"no native gate assigned to CNOT site {index}"
            ) from exc

    for gate in circuit:
        if gate.is_barrier:
            native.barrier()
            continue
        if gate.is_measurement:
            native.append(gate)
            continue
        if gate.num_qubits == 1:
            for rewritten in single_qubit_native(gate):
                native.append(rewritten)
            continue
        if gate.name == "cnot":
            for rewritten in cnot_decomposition(
                assigned(site_index), gate.qubits[0], gate.qubits[1]
            ):
                native.append(rewritten)
            site_index += 1
            continue
        if gate.name == "swap":
            a, b = gate.qubits
            for control, target in ((a, b), (b, a), (a, b)):
                for rewritten in cnot_decomposition(
                    assigned(site_index), control, target
                ):
                    native.append(rewritten)
                site_index += 1
            continue
        if gate.name == "iswap":
            native.append(Gate("xy", gate.qubits, (math.pi,)))
            continue
        if gate.name in native_gates.two_qubit:
            native.append(gate)
            continue
        raise CompilationError(
            f"no nativization rule for 2q gate {gate.name!r}"
        )
    return native
