"""The compilation pipeline: layout -> routing -> scheduling -> sites.

:func:`transpile` performs everything *except* choosing native gates,
yielding a :class:`CompiledProgram` — a routed, scheduled physical
circuit plus its CNOT sites. Native-gate selection policies (baseline
noise-adaptive, ANGEL, runtime-best) each produce a site assignment, and
:meth:`CompiledProgram.nativized` turns any assignment into an
executable. This mirrors the paper's design point that ANGEL "only
replaces the native gates in the scheduled and routed program" and hence
adds little compile time (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..circuit.circuit import QuantumCircuit
from ..device.calibration import CalibrationData
from ..device.device import RigettiAspenDevice
from ..device.topology import Link
from ..exceptions import CompilationError
from ..obs import runtime as obs
from ..sim.statevector import StatevectorSimulator
from .mapping import Layout, noise_adaptive_layout, trivial_layout
from .nativization import CnotSite, extract_cnot_sites, nativize
from .optimize import (
    OptimizationReport,
    cleanup_native_circuit,
    optimize_circuit,
)
from .routing import RoutedCircuit, route_circuit
from .scheduling import asap_schedule

__all__ = ["CompiledProgram", "transpile"]


@dataclass
class CompiledProgram:
    """A program compiled up to (but not including) native gate choice.

    Attributes:
        source: The logical input circuit.
        routed: Routing output (physical circuit, layouts, swap count).
        scheduled: The routed circuit in ASAP moment order; nativization
            and CopyCat construction operate on this.
        sites: CNOT sites of the scheduled circuit, program order.
        device: The target device (used for gate availability checks).
        optimization_level: The pre-routing optimization level the
            program was compiled at (0 = untouched pipeline).
        opt_report: What the optimization passes did, when they ran.
    """

    source: QuantumCircuit
    routed: RoutedCircuit
    scheduled: QuantumCircuit
    sites: List[CnotSite]
    device: RigettiAspenDevice
    optimization_level: int = 0
    opt_report: Optional[OptimizationReport] = None

    @property
    def num_cnot_sites(self) -> int:
        return len(self.sites)

    def links_used(self) -> List[Link]:
        """Distinct links the program's CNOTs touch, program order."""
        ordered: List[Link] = []
        seen: set = set()
        for site in self.sites:
            link = site.link
            if link not in seen:
                seen.add(link)
                ordered.append(link)
        return ordered

    def gate_options(self) -> Dict[Link, Tuple[str, ...]]:
        """Native gates the device supports on each used link."""
        options: Dict[Link, Tuple[str, ...]] = {}
        for link in self.links_used():
            supported = self.device.supported_gates(*link)
            if not supported:
                raise CompilationError(
                    f"device supports no native gate on link {link}"
                )
            options[link] = supported
        return options

    def nativized(
        self,
        site_gates: Union[Mapping[int, str], "object"],
        name_suffix: str = "",
    ) -> QuantumCircuit:
        """Nativize under a site->gate map or a NativeGateSequence."""
        if hasattr(site_gates, "as_site_map"):
            site_gates = site_gates.as_site_map()
        native = nativize(
            self.scheduled,
            site_gates,
            native_gates=self.device.native_gates,
            name_suffix=name_suffix,
        )
        if self.optimization_level >= 2:
            native = cleanup_native_circuit(native)
        return native

    def ideal_distribution(self) -> Dict[str, float]:
        """Noise-free output distribution of the *logical* program.

        Bit order matches the device's output bit order by construction:
        routing re-emits measurements in logical order.
        """
        return StatevectorSimulator().distribution(self.source)


def transpile(
    circuit: QuantumCircuit,
    device: RigettiAspenDevice,
    calibration: Optional[CalibrationData] = None,
    layout: Optional[Layout] = None,
    optimization_level: int = 0,
) -> CompiledProgram:
    """Map, route, and schedule *circuit* for *device*.

    Args:
        circuit: Logical program (measurements optional; all qubits are
            measured if none are explicit).
        device: Target device.
        calibration: If provided, layout and routing are noise-adaptive
            (best-calibrated region and links); otherwise structural.
        layout: Overrides layout selection entirely (used by experiments
            that must pin programs to specific physical qubits).
        optimization_level: Pre-routing optimization (0 = off, the
            bit-identical default; 1 = cancellation/merging/fusion;
            2 = level 1 plus two-qubit rewrites and native cleanup).
            Runs *before* layout so the router sees — and the probe
            budget pays for — only the links the optimized circuit
            still needs.

    Returns:
        A :class:`CompiledProgram` awaiting native gate selection.
    """
    opt_report: Optional[OptimizationReport] = None
    if optimization_level:
        tracer = obs.active_tracer()
        span = (
            tracer.span(
                "opt.run",
                program=circuit.name,
                level=optimization_level,
            )
            if tracer
            else obs.NULL_SPAN
        )
        with span:
            circuit_to_route, opt_report = optimize_circuit(
                circuit, optimization_level
            )
            if tracer:
                span.set(
                    gates_removed=opt_report.gates_removed,
                    links_removed=opt_report.links_removed,
                )
    else:
        circuit_to_route = circuit
    if layout is None:
        if calibration is not None:
            layout = noise_adaptive_layout(
                circuit_to_route, device, calibration
            )
        else:
            layout = trivial_layout(circuit_to_route, device.topology)
    routed = route_circuit(
        circuit_to_route, device.topology, layout, calibration=calibration
    )
    scheduled = asap_schedule(routed.circuit)
    sites = extract_cnot_sites(scheduled)
    compiled = CompiledProgram(
        source=circuit,
        routed=routed,
        scheduled=scheduled,
        sites=sites,
        device=device,
        optimization_level=optimization_level,
        opt_report=opt_report,
    )
    compiled.gate_options()  # fail fast if a used link supports nothing
    return compiled
