"""Pre-search circuit optimization passes.

ANGEL's compile cost is dominated by the ``1 + 2L`` probe budget, so the
cheapest probe is the one that is never run: every gate cancelled before
nativization shrinks the circuit the CopyCat imitates, and every link
whose CNOTs all cancel drops two probes from the budget outright. The
pass layer here runs on the *logical* circuit, ahead of layout, routing
and scheduling, in the compile-before-you-search spirit of ZX-calculus
transpilers: search over the smallest equivalent circuit.

Every pass preserves the circuit unitary up to global phase (verified by
dense-unitary equivalence in the tests), so the compiled program's ideal
distribution — the yardstick probes are scored against — is unchanged.

Levels
------
* ``0`` — no optimization; the pipeline is bit-identical to a build
  without this module.
* ``1`` — :class:`CancelInversesPass`, :class:`MergeRotationsPass` and
  :class:`Fuse1qRunsPass`, iterated to a fixpoint.
* ``2`` — level 1 plus :class:`TwoQubitRewritePass` (Hadamard-sandwich
  CNOT rewrites), and post-nativization native-gate cleanup
  (:func:`cleanup_native_circuit`) on probe and final executables.

Each pass emits an ``opt.pass`` span, and a finished run adds
``opt.gates_removed`` / ``opt.links_removed`` to the metrics registry.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import CompilationError
from ..obs import runtime as obs

__all__ = [
    "OptimizationReport",
    "PassManager",
    "CancelInversesPass",
    "MergeRotationsPass",
    "Fuse1qRunsPass",
    "TwoQubitRewritePass",
    "optimize_circuit",
    "cleanup_native_circuit",
    "OPTIMIZATION_LEVELS",
]

OPTIMIZATION_LEVELS = (0, 1, 2)

_TWO_PI = 2.0 * math.pi
_HALF_PI = math.pi / 2.0
_ATOL = 1e-9

#: Gates diagonal in the computational (Z) basis. Any two diagonal gates
#: commute, a diagonal gate commutes through a CNOT control, and a
#: diagonal gate leaves |0> invariant up to phase.
_DIAGONAL_NAMES = frozenset(
    {"id", "z", "s", "sdg", "t", "tdg", "rz", "phase", "cz", "cphase"}
)

#: Single-qubit gates that commute through a CNOT *target* (X-axis).
_X_AXIS_NAMES = frozenset({"id", "x", "rx"})

#: Rotation families :class:`MergeRotationsPass` merges; the value is the
#: angle period at which the gate returns to identity up to global phase.
_ROTATION_PERIODS = {
    "rx": _TWO_PI,
    "ry": _TWO_PI,
    "rz": _TWO_PI,
    "phase": _TWO_PI,
    "cphase": _TWO_PI,
    "xy": 2.0 * _TWO_PI,
}

#: Two-qubit gates symmetric under qubit exchange.
_SYMMETRIC_NAMES = frozenset({"cz", "swap", "cphase", "xy"})


def _is_zero_mod(angle: float, period: float) -> bool:
    ratio = angle / period
    return abs(ratio - round(ratio)) < _ATOL


def _snap_half_pi(angle: float) -> float:
    """Snap an angle to an exact multiple of pi/2 when within tolerance.

    Keeps merged/fused rotations on the Clifford grid the gate registry's
    predicates (and the PR 8 Clifford fast path) test for, instead of
    drifting off it by accumulated float error.
    """
    ratio = angle / _HALF_PI
    nearest = round(ratio)
    if abs(ratio - nearest) < _ATOL:
        return nearest * _HALF_PI
    return angle


def _same_placement(a: Gate, b: Gate) -> bool:
    """Whether *b* acts on the same qubits as *a*, respecting symmetry."""
    if a.qubits == b.qubits:
        return True
    if a.name in _SYMMETRIC_NAMES and b.name in _SYMMETRIC_NAMES:
        return set(a.qubits) == set(b.qubits)
    return False


def _commutes(a: Gate, b: Gate) -> bool:
    """Conservative commutation test for unitary gates sharing qubits.

    Only rules needed by the passes; returning ``False`` is always safe.
    """
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    a_diag = a.name in _DIAGONAL_NAMES
    b_diag = b.name in _DIAGONAL_NAMES
    if a_diag and b_diag:
        return True
    for first, second in ((a, b), (b, a)):
        if first.name == "cnot":
            control, target = first.qubits
            if second.name == "cnot":
                other_control, other_target = second.qubits
                # CNOTs commute when they share only controls or only
                # targets.
                if (
                    control != other_target
                    and target != other_control
                ):
                    return True
                return False
            if second.num_qubits == 1:
                qubit = second.qubits[0]
                if qubit == control and second.name in _DIAGONAL_NAMES:
                    return True
                if qubit == target and second.name in _X_AXIS_NAMES:
                    return True
                return False
            if second.name in ("cz", "cphase"):
                # Diagonal two-qubit gates commute through the control.
                return target not in second.qubits
            return False
    if a.num_qubits == 1 and b.num_qubits == 1:
        # Same wire: same-axis rotations commute.
        if a.name == b.name and a.name in ("rx", "ry", "x", "y"):
            return True
        if a.name in _X_AXIS_NAMES and b.name in _X_AXIS_NAMES:
            return True
        return False
    if a.name == "xy" and b.name == "xy":
        return set(a.qubits) == set(b.qubits)
    return False


def _is_inverse_pair(a: Gate, b: Gate) -> bool:
    """Whether ``b . a == identity`` (up to global phase)."""
    if not (a.is_unitary and b.is_unitary):
        return False
    if not _same_placement(a, b):
        return False
    spec = a.spec
    if spec.self_inverse and spec.num_params == 0:
        return a.name == b.name
    if spec.inverse_name is not None:
        return b.name == spec.inverse_name
    if a.name == b.name and a.name in _ROTATION_PERIODS:
        period = _ROTATION_PERIODS[a.name]
        return _is_zero_mod(a.params[0] + b.params[0], period)
    return False


def _is_identity_gate(gate: Gate) -> bool:
    """Whether the gate is identity up to global phase."""
    if gate.name == "id":
        return True
    if gate.name in _ROTATION_PERIODS and len(gate.params) == 1:
        period = _ROTATION_PERIODS[gate.name]
        # phase/cphase identity requires the full phase to vanish, not
        # just a global one; their period already encodes that.
        return _is_zero_mod(gate.params[0], period)
    return False


def _rebuild(
    circuit: QuantumCircuit, instructions: Sequence[Optional[Gate]]
) -> QuantumCircuit:
    rebuilt = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in instructions:
        if gate is not None:
            rebuilt.append(gate)
    return rebuilt


class _Pass:
    """Base class: one rewrite over a circuit, returning a new circuit."""

    name = "pass"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        raise NotImplementedError


class CancelInversesPass(_Pass):
    """Remove gate/inverse pairs that meet on every shared wire.

    The scan is commutation-aware: a CNOT pair separated only by gates
    that commute with it (diagonal gates on its control, X-axis gates on
    its target, CNOTs sharing only its control or only its target) still
    cancels. Covers CNOT.CNOT, H.H, X.X, CZ.CZ, S.Sdg, T.Tdg and
    exact-inverse rotation pairs.
    """

    name = "cancel_inverses"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        gates: List[Optional[Gate]] = list(circuit)
        changed = True
        while changed:
            changed = False
            for i, gate in enumerate(gates):
                if gate is None or not gate.is_unitary:
                    continue
                partner = self._find_partner(gates, i, gate)
                if partner is not None:
                    gates[i] = None
                    gates[partner] = None
                    changed = True
        return _rebuild(circuit, gates)

    @staticmethod
    def _find_partner(
        gates: List[Optional[Gate]], start: int, gate: Gate
    ) -> Optional[int]:
        for j in range(start + 1, len(gates)):
            other = gates[j]
            if other is None:
                continue
            if other.is_barrier:
                return None
            if other.is_measurement:
                if other.qubits[0] in gate.qubits:
                    return None
                continue
            if not set(gate.qubits) & set(other.qubits):
                continue
            if _is_inverse_pair(gate, other):
                return j
            if _commutes(gate, other):
                continue
            return None
        return None


class MergeRotationsPass(_Pass):
    """Merge same-axis rotations and drop identity rotations.

    RZ-family rotations merge through anything diagonal (including a CNOT
    control), RX through a CNOT target. Merged angles are snapped back to
    the pi/2 grid so Clifford eligibility is preserved or improved.
    """

    name = "merge_rotations"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        gates: List[Optional[Gate]] = list(circuit)
        changed = True
        while changed:
            changed = False
            for i, gate in enumerate(gates):
                if gate is None or not gate.is_unitary:
                    continue
                if _is_identity_gate(gate):
                    gates[i] = None
                    changed = True
                    continue
                if gate.name not in _ROTATION_PERIODS:
                    continue
                j = self._find_mergeable(gates, i, gate)
                if j is None:
                    continue
                other = gates[j]
                merged = _snap_half_pi(gate.params[0] + other.params[0])
                gates[j] = None
                if _is_zero_mod(merged, _ROTATION_PERIODS[gate.name]):
                    gates[i] = None
                else:
                    gates[i] = Gate(gate.name, gate.qubits, (merged,))
                changed = True
        return _rebuild(circuit, gates)

    @staticmethod
    def _find_mergeable(
        gates: List[Optional[Gate]], start: int, gate: Gate
    ) -> Optional[int]:
        for j in range(start + 1, len(gates)):
            other = gates[j]
            if other is None:
                continue
            if other.is_barrier:
                return None
            if other.is_measurement:
                if other.qubits[0] in gate.qubits:
                    return None
                continue
            if not set(gate.qubits) & set(other.qubits):
                continue
            if other.name == gate.name and _same_placement(gate, other):
                return j
            if _commutes(gate, other):
                continue
            return None
        return None


class Fuse1qRunsPass(_Pass):
    """Fuse runs of single-qubit gates into an RZ.RX.RZ Euler sandwich.

    Each maximal wire-run of two or more single-qubit unitaries is
    multiplied out and re-synthesized as at most three gates
    (``RZ(a) RX(b) RZ(c)`` in matrix order), with angles snapped to the
    pi/2 grid. The fused form is emitted only when it is strictly
    shorter than the run it replaces (identity runs vanish entirely),
    and is verified against the run's product before emission — a
    decomposition that failed to reproduce the unitary would fall back
    to the original gates rather than miscompile.
    """

    name = "fuse_1q_runs"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        output: List[Gate] = []
        pending: Dict[int, List[Gate]] = {}

        def flush(qubit: int) -> None:
            run = pending.pop(qubit, None)
            if run:
                output.extend(self._fused(run))

        for gate in circuit:
            if gate.is_barrier:
                for qubit in list(pending):
                    flush(qubit)
                output.append(gate)
                continue
            if gate.is_unitary and gate.num_qubits == 1:
                pending.setdefault(gate.qubits[0], []).append(gate)
                continue
            for qubit in gate.qubits:
                flush(qubit)
            output.append(gate)
        for qubit in list(pending):
            flush(qubit)
        return _rebuild(circuit, output)

    def _fused(self, run: List[Gate]) -> List[Gate]:
        if len(run) < 2:
            return run
        qubit = run[0].qubits[0]
        product = np.eye(2, dtype=complex)
        for gate in run:
            product = gate.matrix() @ product
        candidate = _resynthesize_1q(product, qubit)
        if candidate is None or len(candidate) >= len(run):
            return run
        return candidate


class TwoQubitRewritePass(_Pass):
    """ZX-inspired Hadamard-sandwich rewrites around CNOTs.

    Two terminating rules, each strictly reducing gate count:

    * sandwich: ``H(t) . CNOT(c,t) . H(t) -> CZ(c,t)``, removing two
      gates — and removing the CNOT site, so a link whose CNOTs all
      carry Hadamard sandwiches drops out of the probe budget entirely;
    * flip: ``(H(c) H(t)) . CNOT(c,t) . (H(c) H(t)) -> CNOT(t,c)``
      (the color-change rule applied to both wires), removing four
      Hadamards.

    Sandwiches are applied first: eliminating a probe-budget site is
    worth more than the flip's two extra Hadamards, which nativization
    would reintroduce around the surviving CNOT anyway.
    """

    name = "two_qubit_rewrite"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        gates = self._apply(list(circuit), mode="sandwich")
        gates = self._apply(gates, mode="flip")
        return _rebuild(circuit, gates)

    def _apply(
        self, gates: List[Optional[Gate]], mode: str
    ) -> List[Optional[Gate]]:
        changed = True
        while changed:
            changed = False
            neighbors = _WireNeighbors(gates)
            for i, gate in enumerate(gates):
                if gate is None or gate.name != "cnot":
                    continue
                control, target = gate.qubits
                before_t = neighbors.previous(i, target)
                after_t = neighbors.next(i, target)
                if not (_is_h(gates, before_t) and _is_h(gates, after_t)):
                    continue
                if mode == "sandwich":
                    gates[before_t] = None
                    gates[after_t] = None
                    gates[i] = Gate("cz", (control, target))
                else:
                    before_c = neighbors.previous(i, control)
                    after_c = neighbors.next(i, control)
                    if not (
                        _is_h(gates, before_c) and _is_h(gates, after_c)
                    ):
                        continue
                    gates[before_c] = None
                    gates[after_c] = None
                    gates[before_t] = None
                    gates[after_t] = None
                    gates[i] = Gate("cnot", (target, control))
                changed = True
                break
        return gates


def _is_h(gates: List[Optional[Gate]], index: Optional[int]) -> bool:
    return (
        index is not None
        and gates[index] is not None
        and gates[index].name == "h"
    )


class _WireNeighbors:
    """Previous/next instruction index per wire, barriers blocking."""

    def __init__(self, gates: List[Optional[Gate]]) -> None:
        self._prev: Dict[int, Dict[int, int]] = {}
        self._next: Dict[int, Dict[int, int]] = {}
        last: Dict[int, int] = {}
        barrier_seen = False
        for i, gate in enumerate(gates):
            if gate is None:
                continue
            if gate.is_barrier:
                # A barrier separates wire neighbors on every qubit.
                last = {}
                barrier_seen = True
                continue
            for qubit in gate.qubits:
                if qubit in last:
                    self._prev.setdefault(i, {})[qubit] = last[qubit]
                    self._next.setdefault(last[qubit], {})[qubit] = i
                last[qubit] = i
        self._barrier_seen = barrier_seen

    def previous(self, index: int, qubit: int) -> Optional[int]:
        return self._prev.get(index, {}).get(qubit)

    def next(self, index: int, qubit: int) -> Optional[int]:
        return self._next.get(index, {}).get(qubit)


def _zyz_angles(unitary: np.ndarray) -> Tuple[float, float, float]:
    """ZYZ Euler angles of a 2x2 unitary: ``U ~ RZ(phi) RY(theta) RZ(lam)``."""
    det = np.linalg.det(unitary)
    su2 = unitary / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[1, 0]) < _ATOL:
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
        return phi_plus_lam, 0.0, 0.0
    if abs(su2[0, 0]) < _ATOL:
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
        return phi_minus_lam, math.pi, 0.0
    phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
    phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
    phi = (phi_plus_lam + phi_minus_lam) / 2.0
    lam = (phi_plus_lam - phi_minus_lam) / 2.0
    return phi, theta, lam


def _resynthesize_1q(
    unitary: np.ndarray, qubit: int
) -> Optional[List[Gate]]:
    """Shortest RZ/RX realization of a 1q unitary, or ``None`` on failure.

    Uses ``RX(b) = RZ(-pi/2) RY(b) RZ(pi/2)`` inside the ZYZ form to get
    the ZXZ sandwich, drops identity factors, snaps angles to the pi/2
    grid, and verifies the result reproduces the unitary up to global
    phase before returning it.
    """
    identity_overlap = abs(np.trace(unitary)) / 2.0
    if abs(identity_overlap - 1.0) < _ATOL:
        return []
    phi, theta, lam = _zyz_angles(unitary)
    # RX(theta) equals RZ(-pi/2) RY(theta) RZ(pi/2) up to the sign
    # convention of the axes; try both orientations (and the reflected
    # theta) and keep whichever reproduces the unitary.
    for z_shift, x_angle in (
        (_HALF_PI, theta),
        (-_HALF_PI, theta),
        (_HALF_PI, -theta),
        (-_HALF_PI, -theta),
    ):
        angles = (
            _snap_half_pi(lam - z_shift),
            _snap_half_pi(x_angle),
            _snap_half_pi(phi + z_shift),
        )
        names = ("rz", "rx", "rz")
        gates = [
            Gate(name, (qubit,), (angle,))
            for name, angle in zip(names, angles)
            if not _is_zero_mod(angle, _TWO_PI)
        ]
        realized = np.eye(2, dtype=complex)
        for gate in gates:
            realized = gate.matrix() @ realized
        overlap = abs(np.trace(realized.conj().T @ unitary)) / 2.0
        if abs(overlap - 1.0) < 1e-7:
            return gates
    return None


class OptimizationReport:
    """What one :meth:`PassManager.run` did to a circuit."""

    def __init__(self) -> None:
        self.iterations = 0
        self.gates_before = 0
        self.gates_after = 0
        self.links_before = 0
        self.links_after = 0
        self.per_pass: Dict[str, int] = {}

    @property
    def gates_removed(self) -> int:
        return max(0, self.gates_before - self.gates_after)

    @property
    def links_removed(self) -> int:
        return max(0, self.links_before - self.links_after)

    def to_dict(self) -> Dict[str, object]:
        return {
            "iterations": self.iterations,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "links_before": self.links_before,
            "links_after": self.links_after,
            "gates_removed": self.gates_removed,
            "links_removed": self.links_removed,
            "per_pass": dict(self.per_pass),
        }


def _distinct_pairs(circuit: QuantumCircuit) -> Set[Tuple[int, int]]:
    return set(circuit.two_qubit_pairs())


class PassManager:
    """Run a pass list to a fixpoint, with per-pass tracing.

    Args:
        passes: Pass instances, applied in order each iteration.
        max_iterations: Safety bound on fixpoint iterations.
    """

    def __init__(
        self, passes: Sequence[_Pass], max_iterations: int = 16
    ) -> None:
        self.passes = list(passes)
        self.max_iterations = max_iterations

    @classmethod
    def for_level(cls, level: int) -> "PassManager":
        """The pass pipeline of an ``optimization_level`` setting."""
        if level not in OPTIMIZATION_LEVELS:
            raise CompilationError(
                f"optimization_level must be one of {OPTIMIZATION_LEVELS}, "
                f"got {level!r}"
            )
        if level == 0:
            return cls([])
        passes: List[_Pass] = []
        if level >= 2:
            passes.append(TwoQubitRewritePass())
        passes.extend(
            [CancelInversesPass(), MergeRotationsPass(), Fuse1qRunsPass()]
        )
        return cls(passes)

    def run(
        self, circuit: QuantumCircuit
    ) -> Tuple[QuantumCircuit, OptimizationReport]:
        """Optimize *circuit*; returns the new circuit plus a report."""
        report = OptimizationReport()
        report.gates_before = sum(1 for _ in circuit.gates())
        report.links_before = len(_distinct_pairs(circuit))
        current = circuit
        if self.passes:
            tracer = obs.active_tracer()
            for _ in range(self.max_iterations):
                report.iterations += 1
                before_iteration = len(current)
                for opt_pass in self.passes:
                    span = (
                        tracer.span(
                            "opt.pass",
                            pass_name=opt_pass.name,
                            gates=len(current),
                        )
                        if tracer
                        else obs.NULL_SPAN
                    )
                    with span:
                        size_before = len(current)
                        current = opt_pass.run(current)
                        removed = size_before - len(current)
                        report.per_pass[opt_pass.name] = (
                            report.per_pass.get(opt_pass.name, 0) + removed
                        )
                        if tracer:
                            span.set(removed=removed)
                if len(current) == before_iteration:
                    break
        report.gates_after = sum(1 for _ in current.gates())
        report.links_after = len(_distinct_pairs(current))
        registry = obs.active_registry()
        if registry is not None and self.passes:
            registry.counter("opt.runs").add(1)
            registry.counter("opt.gates_removed").add(report.gates_removed)
            registry.counter("opt.links_removed").add(report.links_removed)
        return current, report


def optimize_circuit(
    circuit: QuantumCircuit, level: int
) -> Tuple[QuantumCircuit, OptimizationReport]:
    """Optimize a logical circuit at *level* (the :func:`transpile` hook)."""
    return PassManager.for_level(level).run(circuit)


def cleanup_native_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Peephole cleanup of a *nativized* circuit (level 2 only).

    Works entirely inside the native vocabulary, so the output is still
    a valid device executable:

    * RZ gates sink through diagonal two-qubit gates (CZ, CPHASE) and
      merge; a run that reaches a measurement — or started on an
      untouched ``|0>`` wire, where RZ is a global phase — is dropped.
    * Adjacent RX gates merge when the sum stays on the native
      ``k * pi/2`` grid (full turns vanish).
    Exact on the ideal distribution: Z-rotations before measurement and
    on ``|0>`` never change computational-basis probabilities. Probe and
    final executables shrink by the same rules, which is where the
    end-to-end compile wall-time win at level 2 comes from — fewer
    native operations per simulated probe.
    """
    output: List[Gate] = []
    pending_rz: Dict[int, float] = {}
    # A wire is "virgin" while only diagonal gates have touched it: its
    # state is still |0> and any accumulated RZ is a global phase.
    virgin: Dict[int, bool] = {}

    def is_virgin(qubit: int) -> bool:
        return virgin.get(qubit, True)

    def flush(qubit: int) -> None:
        angle = pending_rz.pop(qubit, 0.0)
        if _is_zero_mod(angle, _TWO_PI) or is_virgin(qubit):
            return
        output.append(Gate("rz", (qubit,), (_snap_half_pi(angle),)))

    def emit(gate: Gate) -> None:
        if gate.name == "rx" and output:
            previous = output[-1]
            if (
                previous.name == "rx"
                and previous.qubits == gate.qubits
            ):
                merged = previous.params[0] + gate.params[0]
                ratio = merged / _HALF_PI
                if abs(ratio - round(ratio)) < _ATOL:
                    output.pop()
                    if not _is_zero_mod(merged, _TWO_PI):
                        output.append(
                            Gate(
                                "rx",
                                gate.qubits,
                                (_snap_half_pi(merged),),
                            )
                        )
                    return
        output.append(gate)

    for gate in circuit:
        if gate.is_barrier:
            for qubit in list(pending_rz):
                flush(qubit)
            output.append(gate)
            continue
        if gate.is_measurement:
            # Z-rotations immediately before measurement are invisible.
            pending_rz.pop(gate.qubits[0], None)
            virgin[gate.qubits[0]] = False
            output.append(gate)
            continue
        if gate.name == "rz":
            pending_rz[gate.qubits[0]] = (
                pending_rz.get(gate.qubits[0], 0.0) + gate.params[0]
            )
            continue
        if gate.name in ("cz", "cphase"):
            # Diagonal: pending RZs commute through; |0> wires stay |0>.
            emit(gate)
            continue
        for qubit in gate.qubits:
            flush(qubit)
            virgin[qubit] = False
        emit(gate)
    if circuit.has_measurements:
        # Unmeasured trailing Z-rotations can't affect any outcome.
        pending_rz.clear()
    else:
        for qubit in list(pending_rz):
            flush(qubit)
    return _rebuild(circuit, output)
