"""Additional benchmark programs beyond the paper's Table I.

These widen the evaluation surface in the same spirit as the QASMBench
suite the paper draws from: entanglement structure (W state), arithmetic
(half adder), reversible logic (Fredkin), and phase-heavy circuits (QFT)
stress native gate selection differently than the Table I programs.
All are registered as suite extras (``benchmark_suite(include_extras=
True)``) and verified against their exact ideal outputs in the tests.
"""

from __future__ import annotations

import math

from ..circuit.circuit import QuantumCircuit

__all__ = ["w_state", "w_state_n4", "qft", "qft_n3", "fredkin_n3", "adder_n4"]


def _controlled_ry(
    circuit: QuantumCircuit, theta: float, control: int, target: int
) -> None:
    """CRY via two CNOTs (the standard compilation)."""
    circuit.ry(theta / 2.0, target)
    circuit.cnot(control, target)
    circuit.ry(-theta / 2.0, target)
    circuit.cnot(control, target)


def w_state(num_qubits: int) -> QuantumCircuit:
    """Prepare the n-qubit W state (uniform over one-hot bitstrings).

    Standard cascade: excite qubit 0, then repeatedly split the
    excitation with controlled-RY rotations of angle
    ``2 arccos(sqrt(1/(n-i)))`` followed by a CNOT back. Uses
    ``3 (n-1)`` CNOTs.
    """
    if num_qubits < 2:
        raise ValueError("W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"W_n{num_qubits}")
    circuit.x(0)
    for i in range(num_qubits - 1):
        theta = 2.0 * math.acos(math.sqrt(1.0 / (num_qubits - i)))
        _controlled_ry(circuit, theta, i, i + 1)
        circuit.cnot(i + 1, i)
    return circuit.measure_all()


def w_state_n4() -> QuantumCircuit:
    """Suite extra: 4-qubit W state, 9 CNOTs."""
    return w_state(4)


def qft(num_qubits: int) -> QuantumCircuit:
    """Quantum Fourier transform with final swaps, input |1...1>.

    CPHASE-heavy by construction — a stress test for nativization since
    the controlled-phase ladder can run through any of the three
    natives once expressed as CNOT + RZ pairs. The |1...1> input gives
    a known non-uniform output phase pattern (uniform magnitudes).
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"QFT_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.x(qubit)
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(
            range(target + 1, num_qubits), start=2
        ):
            # Controlled phase via CNOT conjugation keeps the circuit in
            # the CNOT-site vocabulary ANGEL optimizes.
            angle = math.pi / (2 ** (offset - 1))
            circuit.rz(angle / 2.0, control)
            circuit.cnot(control, target)
            circuit.rz(-angle / 2.0, target)
            circuit.cnot(control, target)
            circuit.rz(angle / 2.0, target)
    for qubit in range(num_qubits // 2):
        circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit.measure_all()


def qft_n3() -> QuantumCircuit:
    """Suite extra: 3-qubit QFT (6 CNOTs + 1 SWAP)."""
    return qft(3)


def fredkin_n3() -> QuantumCircuit:
    """Controlled-SWAP on |110>: control 0 set, so qubits 1, 2 swap.

    Fredkin = CNOT(2,1) . Toffoli(0,1,2) . CNOT(2,1); ideal output
    ``101``. 8 logical CNOTs after the Toffoli expansion.
    """
    circuit = QuantumCircuit(3, name="fredkin_n3")
    circuit.x(0)
    circuit.x(1)
    circuit.cnot(2, 1)
    circuit.toffoli(0, 1, 2)
    circuit.cnot(2, 1)
    return circuit.measure_all()


def adder_n4() -> QuantumCircuit:
    """One-bit full adder: a=1, b=1, carry-in=1 -> sum=1, carry-out=1.

    Qubits: 0=a, 1=b, 2=carry-in/sum, 3=carry-out. Two Toffolis build
    the carry, CNOTs build the sum; ideal output ``1111`` (a and b are
    kept). 15 logical CNOTs after Toffoli expansion.
    """
    circuit = QuantumCircuit(4, name="adder_n4")
    circuit.x(0)
    circuit.x(1)
    circuit.x(2)
    circuit.toffoli(0, 1, 3)
    circuit.cnot(0, 1)
    circuit.toffoli(1, 2, 3)
    circuit.cnot(1, 2)
    circuit.cnot(0, 1)
    return circuit.measure_all()
