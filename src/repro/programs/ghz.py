"""Greenberger–Horne–Zeilinger state preparation benchmarks.

The n-qubit GHZ circuit (H then a CNOT chain) ideally outputs ``0^n`` and
``1^n`` with probability 1/2 each. The paper uses GHZ_n4 in the main
evaluation (Table I) and GHZ_n5 for the 81-sequence motivation sweep
(Fig. 3); its highly entangled output makes it very sensitive to
two-qubit gate errors, which is exactly why it is the paper's
workhorse example.
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit

__all__ = ["ghz", "ghz_n4", "ghz_n5"]


def ghz(num_qubits: int) -> QuantumCircuit:
    """The n-qubit GHZ preparation circuit, all qubits measured.

    Uses ``num_qubits - 1`` CNOTs in a linear chain.
    """
    circuit = QuantumCircuit(num_qubits, name=f"GHZ_n{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cnot(qubit, qubit + 1)
    return circuit.measure_all()


def ghz_n4() -> QuantumCircuit:
    """Table I entry: 4 qubits, 3 CNOTs."""
    return ghz(4)


def ghz_n5() -> QuantumCircuit:
    """The Fig. 3 motivation benchmark: 5 qubits, 4 CNOTs (3^4 = 81
    native gate combinations)."""
    return ghz(5)
