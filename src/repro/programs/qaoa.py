"""QAOA MaxCut benchmark.

A depth-1 QAOA circuit for MaxCut: Hadamard superposition, one
``exp(-i gamma Z_i Z_j)`` phase separator per graph edge (two CNOTs
around an RZ), and an RX mixer layer. The Table I instance (QAOA_n5)
uses 5 qubits with a 2-edge graph — 4 CNOTs, matching the paper's count
— with fixed "optimized" angles.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..circuit.circuit import QuantumCircuit

__all__ = ["qaoa_maxcut", "qaoa_n5"]


def qaoa_maxcut(
    num_qubits: int,
    edges: Sequence[Tuple[int, int]],
    gamma: float,
    beta: float,
) -> QuantumCircuit:
    """Depth-1 QAOA for MaxCut on the given edge list.

    Each edge contributes ``CNOT(i,j); RZ(2*gamma, j); CNOT(i,j)``.
    """
    circuit = QuantumCircuit(num_qubits, name=f"QAOA_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for i, j in edges:
        circuit.cnot(i, j)
        circuit.rz(2.0 * gamma, j)
        circuit.cnot(i, j)
    for qubit in range(num_qubits):
        circuit.rx(2.0 * beta, qubit)
    return circuit.measure_all()


def qaoa_n5() -> QuantumCircuit:
    """Table I entry: 5 qubits, 4 CNOTs (two disjoint edges)."""
    return qaoa_maxcut(
        5, edges=((0, 1), (2, 3)), gamma=0.8, beta=0.55
    )
