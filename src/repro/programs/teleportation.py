"""Two-qubit state-transfer ("teleportation") benchmark.

Table I's smallest entry (tele_n2: 2 qubits, 2 CNOTs). With the receiver
initialized to |0>, two CNOTs move an arbitrary state across a link:

``CNOT(0,1); CNOT(1,0)`` maps ``|psi>|0> -> |0>|psi>``.

The sender is prepared with a fixed RY rotation so the ideal output is a
non-uniform two-outcome distribution — informative for the success-rate
metric without being a computational-basis triviality.
"""

from __future__ import annotations

import math

from ..circuit.circuit import QuantumCircuit

__all__ = ["teleport_n2"]


def teleport_n2(theta: float = math.pi / 3) -> QuantumCircuit:
    """State transfer of ``RY(theta)|0>`` from qubit 0 to qubit 1."""
    circuit = QuantumCircuit(2, name="tele_n2")
    circuit.ry(theta, 0)
    circuit.cnot(0, 1)
    circuit.cnot(1, 0)
    return circuit.measure_all()
