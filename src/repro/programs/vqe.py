"""A 4-qubit VQE hardware-efficient ansatz benchmark.

One entangling layer of a hardware-efficient ansatz at *fixed* angles
(as if taken from a converged optimizer run): an RY rotation layer, a
linear CNOT chain, and a second RY layer. This matches how VQE circuits
reach the hardware — by execution time the parameters are constants —
and gives Table I's VQE_n4 (4 qubits, 3 CNOTs).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..circuit.circuit import QuantumCircuit

__all__ = ["vqe_n4"]

#: "Converged" angles used by the benchmark instance (arbitrary but
#: fixed: realistic magnitudes, no special structure).
_DEFAULT_THETAS = (0.42, -1.1, 0.73, 2.0, -0.35, 1.4, 0.9, -0.6)


def vqe_n4(thetas: Optional[Sequence[float]] = None) -> QuantumCircuit:
    """Table I entry: 4 qubits, 3 CNOTs, two RY layers.

    Args:
        thetas: Eight rotation angles (two layers of four); defaults to
            the fixed benchmark instance.
    """
    angles = tuple(thetas) if thetas is not None else _DEFAULT_THETAS
    if len(angles) != 8:
        raise ValueError("vqe_n4 needs exactly 8 angles")
    circuit = QuantumCircuit(4, name="VQE_n4")
    for qubit in range(4):
        circuit.ry(angles[qubit], qubit)
    for qubit in range(3):
        circuit.cnot(qubit, qubit + 1)
    for qubit in range(4):
        circuit.ry(angles[4 + qubit], qubit)
    return circuit.measure_all()
