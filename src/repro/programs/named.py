"""Named benchmarks from public QASM collections, as synthesizers emit them.

These circuits reproduce the *shape* of programs in benchmark suites
like QASMBench / MQT Bench: not hand-minimized, but the literal output
of the naive generators those suites were built from (state-prep
synthesis, Trotter-term expansion, per-stabilizer parity networks,
oracle templates). That makes them the honest stress test for the
pre-search optimization pipeline — the redundancy they carry (zero-angle
multiplexer layers, zero-coefficient Trotter terms, check-and-restore
parity pairs, Hadamard-sandwiched CZ oracles) is exactly what real
generated circuits carry, and removing it shrinks the ANGEL ``1 + 2L``
probe budget because whole links drop out of the routed program.
"""

from __future__ import annotations

import math

from ..circuit.circuit import QuantumCircuit

__all__ = ["wstate_n4", "basis_trotter_n4", "grover_n2", "qec_en_n5"]


def wstate_n4() -> QuantumCircuit:
    """3-excitation W state on a padded 4-qubit register (15 CNOTs).

    Fixed-width benchmark registers are the norm in QASM collections:
    the state lives on qubits 0-2 and qubit 3 is padding. Initialize-
    style synthesis does not special-case that — it emits the full
    recursive demultiplexing cascade over the whole register, so the
    padded qubit gets (a) a multiplexed-RZ phase layer on ``(0, 2)``
    whose angles are all zero (the amplitudes are real) and (b) a
    Gray-code multiplexed-RY disentangling layer onto qubit 3 whose
    angles are all zero (the qubit is ``|0>``). Both layers are pure
    CX scaffolding around identity rotations. Optimizing them away
    leaves qubit 3 with no two-qubit gates at all, so every routed
    link incident to it leaves the ``1 + 2L`` probe budget.
    """
    circuit = QuantumCircuit(4, name="wstate_n4")
    # Amplitude cascade: sin(theta0/2) = 1/sqrt(3) puts 1/sqrt(3) of the
    # weight on |100>; the zero-controlled RY(pi/2) splits the rest
    # evenly between |010> and |000>.
    theta0 = 2.0 * math.asin(1.0 / math.sqrt(3.0))
    circuit.ry(theta0, 0)
    circuit.x(0)
    circuit.ry(math.pi / 4, 1)
    circuit.cnot(0, 1)
    circuit.ry(-math.pi / 4, 1)
    circuit.cnot(0, 1)
    circuit.x(0)
    # Parity network: flip q2 iff q0 = q1 = 0. On the reachable states
    # (|100>, |010>, |000>) OR equals XOR, so conjugating by cx(0,1)
    # lets a single cx(1,2) do the controlled flip.
    circuit.cnot(0, 1)
    circuit.x(2)
    circuit.cnot(1, 2)
    circuit.cnot(0, 1)
    # Multiplexed-RZ phase correction (all angles zero for a real state).
    circuit.rz(0.0, 2)
    circuit.cnot(0, 2)
    circuit.rz(0.0, 2)
    circuit.cnot(0, 2)
    # Gray-code multiplexed-RY disentangling layer for the padded qubit:
    # all angles zero because qubit 3 carries no amplitude, but the
    # synthesizer emits the scaffolding anyway.
    for control in (2, 1, 2, 0, 2, 1, 2, 0):
        circuit.ry(0.0, 3)
        circuit.cnot(control, 3)
    circuit.measure_all()
    return circuit


def basis_trotter_n4() -> QuantumCircuit:
    """Two Trotter steps of a 4-site ZZ chain after a basis rotation.

    Term-by-term Trotter expansion (OpenFermion ``basis_trotter`` style):
    each ``exp(-i c Z.Z)`` term becomes ``cx . rz(2c) . cx`` whether or
    not the coefficient survives the basis change. Here the ``Z2 Z3``
    coefficient is zero, so its two conjugating CNOTs bracket ``rz(0)``
    — dead weight that keeps link ``(2, 3)`` alive in the routed program
    until the optimizer deletes the term. 12 CNOTs as generated.
    """
    circuit = QuantumCircuit(4, name="basis_trotter_n4")
    # Single-particle (Givens-style) basis rotation.
    circuit.ry(0.4, 0)
    circuit.ry(1.1, 1)
    circuit.ry(-0.7, 2)
    circuit.ry(0.9, 3)
    for _ in range(2):  # two Trotter steps over the same term list
        circuit.cnot(0, 1)
        circuit.rz(2 * 0.37, 1)
        circuit.cnot(0, 1)
        circuit.cnot(1, 2)
        circuit.rz(2 * 0.21, 2)
        circuit.cnot(1, 2)
        circuit.cnot(2, 3)
        circuit.rz(0.0, 3)  # zero-coefficient term, emitted anyway
        circuit.cnot(2, 3)
        circuit.rx(0.5, 1)
        circuit.rx(-0.3, 2)
    circuit.measure_all()
    return circuit


def grover_n2() -> QuantumCircuit:
    """One Grover iteration on 2 qubits, oracle marking ``|11>``.

    Template form: the oracle CZ and the diffusion CZ are both spelled
    as Hadamard-sandwiched CNOTs, the way gate-template libraries emit
    them for CNOT-basis backends. Measures ``11`` with certainty. The
    two-qubit rewrite pass folds both sandwiches back to native CZ,
    taking the program from 2 CNOT sites to 0 — the probe budget
    collapses from ``1 + 2L`` to the single reference probe.
    """
    circuit = QuantumCircuit(2, name="grover_n2")
    circuit.h(0)
    circuit.h(1)
    # Oracle: CZ marking |11>, as an H-sandwiched CNOT.
    circuit.h(1)
    circuit.cnot(0, 1)
    circuit.h(1)
    # Diffusion: H X (CZ) X H on both qubits.
    circuit.h(0)
    circuit.h(1)
    circuit.x(0)
    circuit.x(1)
    circuit.h(1)
    circuit.cnot(0, 1)
    circuit.h(1)
    circuit.x(0)
    circuit.x(1)
    circuit.h(0)
    circuit.h(1)
    circuit.measure_all()
    return circuit


def qec_en_n5() -> QuantumCircuit:
    """5-qubit repetition-code encoder with syndrome extraction (6 CNOTs).

    Three data qubits (GHZ-encoded), a syndrome ancilla, and an
    ancilla-verification qubit. Fault-tolerant templates verify the
    syndrome ancilla's preparation by entangling it with a checker
    qubit; in this measurement-free benchmark form the verification is
    immediately uncomputed, leaving the pair ``cx(3,4) . cx(3,4)`` —
    a no-op, but the only two-qubit contact qubit 4 ever has. Until
    the optimizer deletes it, any routing must spend a physical link
    on qubit 4, and the ``1 + 2L`` probe budget pays for it.
    """
    circuit = QuantumCircuit(5, name="qec_en_n5")
    # Encode |+> into the 3-qubit repetition code.
    circuit.h(0)
    circuit.cnot(0, 1)
    circuit.cnot(1, 2)
    # Ancilla verification: armed and immediately uncomputed.
    circuit.cnot(3, 4)
    circuit.cnot(3, 4)
    # Stabilizer Z0 Z1 -> ancilla 3.
    circuit.cnot(0, 3)
    circuit.cnot(1, 3)
    circuit.measure_all()
    return circuit
