"""The evaluation benchmark suite (paper Table I).

Each entry carries the logical circuit builder plus the qubit/CNOT
figures the paper tabulates. CNOT counts are *logical* (pre-routing);
routed counts depend on the layout and are reported by the experiment
harness alongside (toff_n3 grows from 6 to 9 on a line, BV_n4 from 3 to
6, exactly the post-SWAP numbers the paper quotes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..circuit.circuit import QuantumCircuit
from ..exceptions import ReproError
from .bernstein_vazirani import bv_n4
from .ghz import ghz_n4, ghz_n5
from .linear_solver import linear_solver_n3
from .qaoa import qaoa_n5
from .qec import qec_n4
from .extras import adder_n4, fredkin_n3, qft_n3, w_state_n4
from .named import basis_trotter_n4, grover_n2, qec_en_n5, wstate_n4
from .teleportation import teleport_n2
from .toffoli import toffoli_n3
from .vqe import vqe_n4

__all__ = ["BenchmarkSpec", "benchmark_suite", "get_benchmark"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table I.

    Attributes:
        name: Canonical benchmark name (matches the paper's).
        description: What the program computes.
        qubits: Logical register width.
        logical_cnots: CNOTs before routing.
        builder: Zero-argument circuit factory.
    """

    name: str
    description: str
    qubits: int
    logical_cnots: int
    builder: Callable[[], QuantumCircuit]

    def build(self) -> QuantumCircuit:
        circuit = self.builder()
        if circuit.num_qubits != self.qubits:
            raise ReproError(
                f"{self.name}: builder produced {circuit.num_qubits} qubits,"
                f" spec says {self.qubits}"
            )
        return circuit


_SUITE: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "tele_n2", "Teleportation (state transfer)", 2, 2, teleport_n2
    ),
    BenchmarkSpec(
        "lin_sol_n3", "Linear Solver", 3, 4, linear_solver_n3
    ),
    BenchmarkSpec("toff_n3", "Toffoli Gate", 3, 6, toffoli_n3),
    BenchmarkSpec(
        "GHZ_n4", "Greenberger-Horne-Zeilinger", 4, 3, ghz_n4
    ),
    BenchmarkSpec(
        "VQE_n4", "Variational Quantum Eigensolver", 4, 3, vqe_n4
    ),
    BenchmarkSpec("BV_n4", "Bernstein-Vazirani", 4, 3, bv_n4),
    BenchmarkSpec("QEC_n4", "Quantum Error Correction", 4, 5, qec_n4),
    BenchmarkSpec(
        "QAOA_n5", "Quantum Approximate Optimization", 5, 4, qaoa_n5
    ),
)

# Extras: GHZ_n5 powers the Fig. 3 motivation sweep; the rest widen the
# workload surface beyond the paper (see programs/extras.py).
_EXTRAS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "GHZ_n5", "5-qubit GHZ (Fig. 3 motivation)", 5, 4, ghz_n5
    ),
    BenchmarkSpec("W_n4", "4-qubit W state", 4, 9, w_state_n4),
    BenchmarkSpec("QFT_n3", "Quantum Fourier Transform", 3, 6, qft_n3),
    BenchmarkSpec("fredkin_n3", "Controlled-SWAP", 3, 8, fredkin_n3),
    BenchmarkSpec("adder_n4", "One-bit full adder", 4, 15, adder_n4),
    # Named benchmarks (QASMBench-shaped generator output; the redundancy
    # they carry is the optimization pipeline's target — programs/named.py).
    BenchmarkSpec(
        "wstate_n4", "W state on a padded register", 4, 15, wstate_n4
    ),
    BenchmarkSpec(
        "basis_trotter_n4", "ZZ-chain Trotter steps", 4, 12, basis_trotter_n4
    ),
    BenchmarkSpec("grover_n2", "Grover search (one iteration)", 2, 2, grover_n2),
    BenchmarkSpec(
        "qec_en_n5", "Repetition-code encoder + syndrome", 5, 6, qec_en_n5
    ),
)

def benchmark_suite(include_extras: bool = False) -> List[BenchmarkSpec]:
    """The Table I suite, optionally with non-Table-I extras."""
    suite = list(_SUITE)
    if include_extras:
        suite.extend(_EXTRAS)
    return suite


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by its Table I name (case-insensitive)."""
    for spec in (*_SUITE, *_EXTRAS):
        if spec.name.lower() == name.lower():
            return spec
    known = ", ".join(s.name for s in (*_SUITE, *_EXTRAS))
    raise ReproError(f"unknown benchmark {name!r}; known: {known}")
