"""The paper's benchmark programs (Table I) plus the motivation extras."""

from .bernstein_vazirani import bernstein_vazirani, bv_n4
from .extras import adder_n4, fredkin_n3, qft, qft_n3, w_state, w_state_n4
from .ghz import ghz, ghz_n4, ghz_n5
from .linear_solver import linear_solver_n3
from .named import basis_trotter_n4, grover_n2, qec_en_n5, wstate_n4
from .qaoa import qaoa_maxcut, qaoa_n5
from .qec import qec_n4
from .suite import BenchmarkSpec, benchmark_suite, get_benchmark
from .teleportation import teleport_n2
from .toffoli import toffoli_n3
from .vqe import vqe_n4

__all__ = [
    "ghz",
    "ghz_n4",
    "ghz_n5",
    "teleport_n2",
    "linear_solver_n3",
    "toffoli_n3",
    "vqe_n4",
    "bernstein_vazirani",
    "bv_n4",
    "qec_n4",
    "qaoa_maxcut",
    "qaoa_n5",
    "BenchmarkSpec",
    "benchmark_suite",
    "get_benchmark",
    "w_state",
    "w_state_n4",
    "qft",
    "qft_n3",
    "fredkin_n3",
    "adder_n4",
    "wstate_n4",
    "basis_trotter_n4",
    "grover_n2",
    "qec_en_n5",
]
