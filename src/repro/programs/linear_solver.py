"""A 3-qubit linear-solver kernel (after QASMBench's linearsolver_n3).

A miniature HHL-style circuit: a rotation encodes the right-hand side, an
ancilla-controlled pair of rotations applies the (inverted-eigenvalue)
conditional dynamics, and the uncompute mirrors the encode. It uses 4
CNOTs on two qubit pairs, which gives the 81-sequence space the paper
sweeps in Fig. 19.
"""

from __future__ import annotations

import math

from ..circuit.circuit import QuantumCircuit

__all__ = ["linear_solver_n3"]


def linear_solver_n3() -> QuantumCircuit:
    """Table I entry: 3 qubits, 4 CNOTs (two on each of two pairs)."""
    circuit = QuantumCircuit(3, name="lin_sol_n3")
    # Encode |b> on qubit 1.
    circuit.ry(math.pi / 4, 1)
    # Controlled rotation block between qubits 0 and 1.
    circuit.cnot(0, 1)
    circuit.ry(-math.pi / 8, 1)
    circuit.cnot(0, 1)
    circuit.ry(math.pi / 8, 1)
    # Readout-rotation block onto the solution register (qubit 2).
    circuit.cnot(1, 2)
    circuit.ry(math.pi / 6, 2)
    circuit.cnot(1, 2)
    circuit.ry(-math.pi / 6, 2)
    return circuit.measure_all()
