"""The 3-qubit Toffoli benchmark.

The standard 6-CNOT, T-depth-3 decomposition. On a linear topology the
(0, 2) CNOTs are non-adjacent, so routing inserts a SWAP and the executed
circuit reaches the 9 CNOTs on 2 links the paper reports for toff_n3
(Section VI-B). Inputs are prepared in |11> so the ideal output flips the
target deterministically — maximal sensitivity to CNOT errors.
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit

__all__ = ["toffoli_n3"]


def toffoli_n3() -> QuantumCircuit:
    """Table I entry: 3 qubits; 6 logical CNOTs (9 after routing on a
    line). Prepared as ``|110> -> |111>``."""
    circuit = QuantumCircuit(3, name="toff_n3")
    circuit.x(0)
    circuit.x(1)
    circuit.toffoli(0, 1, 2)
    return circuit.measure_all()
