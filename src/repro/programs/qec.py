"""Four-qubit quantum error-detection benchmark (after Córcoles et al.).

Two code qubits hold an entangled logical state; a bit-flip syndrome
qubit checks ZZ parity via two CNOTs and a phase-flip syndrome qubit
checks XX parity via a Hadamard-conjugated CNOT pair. With the logical
preparation CNOT this is Table I's QEC_n4: 4 qubits, 5 CNOTs. In the
noise-free case both syndromes read 0.
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit

__all__ = ["qec_n4"]


def qec_n4() -> QuantumCircuit:
    """Table I entry: 4 qubits, 5 CNOTs.

    Qubits 0-1 are data; qubit 2 detects bit flips, qubit 3 phase flips.
    """
    circuit = QuantumCircuit(4, name="QEC_n4")
    # Prepare the logical |+>_L = (|00> + |11>)/sqrt(2) state.
    circuit.h(0)
    circuit.cnot(0, 1)
    # ZZ parity onto syndrome qubit 2.
    circuit.cnot(0, 2)
    circuit.cnot(1, 2)
    # XX parity onto syndrome qubit 3.
    circuit.h(3)
    circuit.cnot(3, 0)
    circuit.cnot(3, 1)
    circuit.h(3)
    return circuit.measure_all()
