"""Bernstein–Vazirani benchmark.

Recovers a hidden bit string with one oracle query. The oracle applies a
CNOT from each data qubit whose secret bit is 1 onto the phase-kickback
ancilla, so the CNOT count equals the weight of the secret. BV_n4 uses
the all-ones 3-bit secret (3 logical CNOTs between non-adjacent pairs —
routing on sparse topologies adds SWAPs, which is how the paper's 6-CNOT
count for BV_n4 arises). The ideal output is the secret itself with
probability 1, making success-rate interpretation immediate.
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit

__all__ = ["bernstein_vazirani", "bv_n4"]


def bernstein_vazirani(secret: str) -> QuantumCircuit:
    """BV circuit for a given *secret* bit string.

    Uses ``len(secret)`` data qubits plus one ancilla; the data qubits
    are measured (ideal outcome = the secret).
    """
    if not secret or any(c not in "01" for c in secret):
        raise ValueError(f"secret must be a non-empty bit string: {secret!r}")
    n = len(secret)
    circuit = QuantumCircuit(n + 1, name=f"BV_n{n + 1}")
    ancilla = n
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(n):
        circuit.h(qubit)
    for qubit, bit in enumerate(secret):
        if bit == "1":
            circuit.cnot(qubit, ancilla)
    for qubit in range(n):
        circuit.h(qubit)
    for qubit in range(n):
        circuit.measure(qubit)
    return circuit


def bv_n4() -> QuantumCircuit:
    """Table I entry: 4 qubits, secret ``111``."""
    return bernstein_vazirani("111")
