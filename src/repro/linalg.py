"""Linear-algebra utilities shared across the library.

These helpers implement the handful of matrix-analysis quantities the paper
relies on:

* the operator norm distance of Eq. (1), used to pick the closest Clifford
  replacement for a non-Clifford gate when building CopyCats;
* global-phase-invariant unitary equivalence, used throughout the tests to
  verify that gate decompositions (e.g. CNOT via two XY pulses) are exact;
* process/average gate fidelity, used by the simulated randomized
  benchmarking calibration to report the state-averaged fidelity a vendor
  would publish.

All functions operate on plain ``numpy`` arrays; no objects from the rest
of the library leak in, so this module sits at the bottom of the
dependency graph.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_unitary",
    "operator_norm",
    "operator_norm_distance",
    "phase_aligned",
    "unitaries_equal_up_to_phase",
    "phase_invariant_distance",
    "entanglement_fidelity",
    "average_gate_fidelity",
    "channel_average_fidelity",
    "kron_n",
    "closest_unitary",
]

_ATOL = 1e-9


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if *matrix* is unitary within tolerance *atol*."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return np.allclose(matrix.conj().T @ matrix, identity, atol=atol)


def operator_norm(matrix: np.ndarray) -> float:
    """Spectral norm ``||M||_inf`` — the largest singular value of *M*.

    This is the norm of paper Eq. (1): the maximum amplification of any
    state vector, ``max_{|psi> != 0} ||M|psi>||_2 / |||psi>||_2``.
    """
    return float(np.linalg.norm(np.asarray(matrix), ord=2))


def operator_norm_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Distance ``||U - V||_inf`` between two operators (paper Eq. 1)."""
    return operator_norm(np.asarray(u) - np.asarray(v))


def phase_aligned(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Return ``e^{i phi} V`` with the global phase chosen to best match *U*.

    The optimal phase maximizes ``Re(e^{-i phi} Tr(U^dag V))`` and therefore
    minimizes both the Frobenius and (for nearby unitaries) the operator
    norm distance to *U*. If the trace overlap vanishes the input *V* is
    returned unchanged, since every phase is then equally (un)aligned.
    """
    u = np.asarray(u)
    v = np.asarray(v)
    overlap = np.trace(u.conj().T @ v)
    if abs(overlap) < _ATOL:
        return v
    return v * (overlap.conjugate() / abs(overlap))


def unitaries_equal_up_to_phase(
    u: np.ndarray, v: np.ndarray, atol: float = 1e-7
) -> bool:
    """Return ``True`` if ``U = e^{i phi} V`` for some global phase *phi*."""
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape:
        return False
    return bool(np.allclose(u, phase_aligned(u, v), atol=atol))


def phase_invariant_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Operator-norm distance between *U* and *V*, minimized over phase.

    The paper's Eq. (1) is phase-sensitive; a literal reading would call
    ``Z`` and ``-Z`` maximally distant. When ranking Clifford replacements
    we quotient out the global phase (which has no physical effect) by
    aligning *V* to *U* first. See :func:`phase_aligned`.
    """
    return operator_norm_distance(u, phase_aligned(u, v))


def entanglement_fidelity(u_target: np.ndarray, v_actual: np.ndarray) -> float:
    """Entanglement (process) fidelity between two unitaries.

    ``F_e = |Tr(U^dag V)|^2 / d^2`` where *d* is the Hilbert-space
    dimension. Equals 1 iff the unitaries agree up to global phase.
    """
    u_target = np.asarray(u_target)
    v_actual = np.asarray(v_actual)
    d = u_target.shape[0]
    overlap = np.trace(u_target.conj().T @ v_actual)
    return float(abs(overlap) ** 2 / d**2)


def average_gate_fidelity(u_target: np.ndarray, v_actual: np.ndarray) -> float:
    """Average gate fidelity of unitary *V* relative to target *U*.

    ``F_avg = (d * F_e + 1) / (d + 1)`` — the quantity randomized
    benchmarking estimates, averaged uniformly over input pure states.
    """
    d = np.asarray(u_target).shape[0]
    return float((d * entanglement_fidelity(u_target, v_actual) + 1) / (d + 1))


def channel_average_fidelity(
    u_target: np.ndarray, kraus_operators: list[np.ndarray]
) -> float:
    """Average gate fidelity of a noisy channel relative to a unitary target.

    The channel is ``E(rho) = sum_i K_i rho K_i^dag`` where each ``K_i``
    already includes the intended unitary (i.e. the K's describe the full
    noisy implementation, not just the error). The entanglement fidelity is
    ``F_e = sum_i |Tr(U^dag K_i)|^2 / d^2`` and the average fidelity follows
    from the standard Horodecki–Nielsen formula.

    This is what the simulated calibration service reports: the same
    state-averaged number a randomized-benchmarking experiment converges
    to, which deliberately hides the state-dependent structure of coherent
    errors — the paper's central observation.
    """
    u_target = np.asarray(u_target)
    d = u_target.shape[0]
    fid_e = 0.0
    u_dag = u_target.conj().T
    for kraus in kraus_operators:
        fid_e += abs(np.trace(u_dag @ np.asarray(kraus))) ** 2
    fid_e /= d**2
    return float((d * fid_e + 1) / (d + 1))


def kron_n(*matrices: np.ndarray) -> np.ndarray:
    """Kronecker product of the given matrices, left factor most significant.

    ``kron_n(A, B, C)`` places ``A`` on the most-significant qubit. The
    whole library uses big-endian ordering: qubit 0 is the leftmost bit of
    a measured bitstring and the most-significant index of a state vector.
    """
    result = np.asarray(matrices[0])
    for matrix in matrices[1:]:
        result = np.kron(result, np.asarray(matrix))
    return result


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project *matrix* onto the unitary group (polar decomposition).

    Used to re-unitarize products of floating-point rotations before
    comparing them against exact gate matrices in tests.
    """
    u_left, _, v_right = np.linalg.svd(np.asarray(matrix))
    return u_left @ v_right
