"""repro — ANGEL: Application-specific Native Gate Selection (HPCA 2023).

A from-scratch reproduction of "The Imitation Game: Leveraging CopyCats
for Robust Native Gate Selection in NISQ Programs" (Das, Kessler, Shi;
HPCA 2023), including every substrate the paper depends on:

* a quantum circuit IR with OpenQASM round-tripping
  (:mod:`repro.circuit`);
* state-vector, density-matrix (noisy), and CHP stabilizer simulators
  (:mod:`repro.sim`);
* a simulated Rigetti Aspen device with three two-qubit native gates,
  drifting per-link physics, and vendor-style calibration with per-gate
  refresh cadence (:mod:`repro.device`);
* a NISQ compiler — mapping, SWAP routing, scheduling, nativization
  (:mod:`repro.compiler`);
* ANGEL itself — CopyCats and the localized native-gate search
  (:mod:`repro.core`);
* an execution service between the algorithms and the device — batched
  probe jobs, pluggable backends, per-phase accounting
  (:mod:`repro.exec`);
* the paper's benchmark suite (:mod:`repro.programs`) and every
  figure/table as a reproducible experiment (:mod:`repro.experiments`).

Quickstart::

    from repro import Angel, AngelConfig, Job, transpile, ghz
    from repro.experiments import ExperimentContext

    ctx = ExperimentContext.create()          # aged Aspen-11
    compiled = transpile(ghz(4), ctx.device, ctx.calibration)
    angel = Angel(ctx.device, ctx.calibration, AngelConfig(seed=7))
    result = angel.select(compiled)           # 1 + 2L CopyCat probes
    program = angel.nativize(compiled, result)
    counts = ctx.executor.submit(Job(program, shots=4096)).counts
    print(ctx.executor.stats.to_text())       # probe vs final cost

See README.md for the architecture overview, DESIGN.md for the
paper-to-module map, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

from .circuit import Gate, QuantumCircuit, from_qasm, to_qasm
from .compiler import CompiledProgram, transpile
from .core import (
    Angel,
    AngelConfig,
    AngelResult,
    CopyCat,
    NativeGateSequence,
    build_copycat,
    enumerate_sequences,
    localized_search,
    noise_adaptive_sequence,
    random_sequence,
    runtime_best,
)
from .device import (
    CalibrationService,
    RigettiAspenDevice,
    aspen11,
    aspen_m1,
    build_device,
    small_test_device,
)
from .exec import (
    Backend,
    BatchExecutor,
    ExecutorStats,
    Job,
    JobResult,
    LocalBackend,
    get_executor,
)
from .obs import (
    JsonlSpanSink,
    MetricsRegistry,
    Span,
    Tracer,
    observed,
    read_trace,
    render_trace,
)
from .metrics import (
    geometric_mean,
    hellinger_fidelity,
    spearman_correlation,
    success_rate,
    success_rate_from_counts,
    total_variation_distance,
)
from .programs import benchmark_suite, get_benchmark, ghz
from .service import (
    CloudQPUService,
    FaultProfile,
    RemoteBackend,
    RetryPolicy,
    fault_profile,
)

__all__ = [
    "__version__",
    # circuit IR
    "Gate",
    "QuantumCircuit",
    "to_qasm",
    "from_qasm",
    # compiler
    "transpile",
    "CompiledProgram",
    # ANGEL core
    "Angel",
    "AngelConfig",
    "AngelResult",
    "CopyCat",
    "build_copycat",
    "NativeGateSequence",
    "enumerate_sequences",
    "localized_search",
    "noise_adaptive_sequence",
    "random_sequence",
    "runtime_best",
    # device
    "RigettiAspenDevice",
    "CalibrationService",
    "aspen11",
    "aspen_m1",
    "build_device",
    "small_test_device",
    # execution service
    "Backend",
    "LocalBackend",
    "Job",
    "JobResult",
    "BatchExecutor",
    "ExecutorStats",
    "get_executor",
    # cloud QPU service emulation
    "CloudQPUService",
    "FaultProfile",
    "fault_profile",
    "RemoteBackend",
    "RetryPolicy",
    # observability
    "Tracer",
    "Span",
    "JsonlSpanSink",
    "MetricsRegistry",
    "observed",
    "read_trace",
    "render_trace",
    # metrics
    "success_rate",
    "success_rate_from_counts",
    "total_variation_distance",
    "hellinger_fidelity",
    "spearman_correlation",
    "geometric_mean",
    # programs
    "benchmark_suite",
    "get_benchmark",
    "ghz",
]
