"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Specific subclasses mark which subsystem rejected the
operation; their messages always name the offending object so failures are
actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """An invalid circuit construction or manipulation was attempted.

    Raised for out-of-range qubits, duplicate qubits in one instruction,
    unknown gate names, or operations applied after measurement where that
    is not supported.
    """


class QasmError(ReproError):
    """OpenQASM text could not be parsed or serialized."""


class SimulationError(ReproError):
    """A simulator was given a circuit it cannot execute.

    Examples: a non-Clifford gate sent to the stabilizer simulator, or a
    circuit whose qubit count exceeds the configured simulator limit.
    """


class DeviceError(ReproError):
    """A circuit violates device constraints.

    Raised when a two-qubit gate addresses a pair of qubits that is not a
    link of the device topology, when a gate outside the device's native
    set reaches the executor, or when a disabled link/gate is used.
    """


class CompilationError(ReproError):
    """The compiler could not produce a valid native circuit.

    Raised for unroutable circuits (disconnected topology regions), gates
    with no registered decomposition, or inconsistent layouts.
    """


class CalibrationError(ReproError):
    """Calibration data was queried for an unknown link or native gate."""


class ExecutionError(ReproError):
    """Invalid job submission or execution-service misconfiguration."""


class ServiceError(ExecutionError):
    """A fault raised by the emulated cloud QPU service layer.

    Subclasses in :mod:`repro.service.errors` distinguish *transient*
    faults (retryable: rejections, timeouts, lost results, recalibration
    windows, rate limits) from the terminal :class:`~repro.service.
    errors.JobFailedError` a resilient client reports once its retry
    budget, deadline, or circuit breaker gives up on a job.
    """


class SearchError(ReproError):
    """The ANGEL search was configured inconsistently.

    Examples: an empty candidate gate set, a probe budget of zero shots, or
    a reference sequence whose sites do not match the program being tuned.
    """
