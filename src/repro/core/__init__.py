"""ANGEL — the paper's primary contribution.

* :mod:`~repro.core.sequence` — native gate sequences and enumeration;
* :mod:`~repro.core.copycat` — Clifford-dominated program imitations;
* :mod:`~repro.core.policies` — baseline noise-adaptive / random /
  runtime-best selection;
* :mod:`~repro.core.search` — the localized mass-replacement search;
* :mod:`~repro.core.angel` — the end-to-end framework facade.
"""

from .angel import Angel, AngelConfig, AngelProbePlan, AngelResult
from .cdr import CdrFit, CliffordDataRegression, parity_expectation
from .copycat import DEFAULT_NON_CLIFFORD_BUDGET, CopyCat, build_copycat
from .policies import (
    SequenceEvaluation,
    noise_adaptive_sequence,
    random_sequence,
    runtime_best,
)
from .search import (
    ProbeBatch,
    ProbeRecord,
    SearchTrace,
    localized_search,
    localized_search_plan,
)
from .sequence import NativeGateSequence, enumerate_sequences

__all__ = [
    "Angel",
    "CliffordDataRegression",
    "CdrFit",
    "parity_expectation",
    "AngelConfig",
    "AngelResult",
    "CopyCat",
    "build_copycat",
    "DEFAULT_NON_CLIFFORD_BUDGET",
    "NativeGateSequence",
    "enumerate_sequences",
    "noise_adaptive_sequence",
    "random_sequence",
    "runtime_best",
    "SequenceEvaluation",
    "localized_search",
    "localized_search_plan",
    "SearchTrace",
    "ProbeRecord",
    "ProbeBatch",
    "AngelProbePlan",
]
