"""ANGEL's localized search (paper Section IV-E, Steps 2-4).

The search is generic over a *probe*: a callable that executes a
candidate sequence (as a CopyCat, in ANGEL's case) and returns its
success rate. This keeps the algorithm testable with synthetic
objectives and reusable with other probe circuits.

Algorithm (complexity ``1 + sum_links (|options|-1)`` probes, i.e.
``1 + 2L`` with three natives — Table II's ANGEL column):

1. Probe the initial *reference* sequence (noise-adaptive by default).
2. Visit each used link once, in program order. For each alternative
   native gate on that link, probe the sequence with a *mass
   replacement* (all sites on the link switch together).
3. *Continuous update*: if any candidate beats the current reference,
   adopt it immediately, so later links are evaluated in the context of
   earlier wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..device.topology import Link
from ..exceptions import SearchError
from ..obs import runtime as obs
from .sequence import NativeGateSequence

__all__ = [
    "ProbeRecord",
    "ProbeBatch",
    "SearchTrace",
    "localized_search",
    "localized_search_plan",
]

ProbeFunction = Callable[[NativeGateSequence], float]
#: A batch probe returns one rate per sequence, ``None`` marking a probe
#: job that failed permanently (e.g. through a flaky remote backend).
BatchProbeFunction = Callable[
    [Sequence[NativeGateSequence]], List[Optional[float]]
]


@dataclass(frozen=True)
class ProbeRecord:
    """One probe execution during the search.

    A *failed* probe is a candidate whose device job never produced
    counts (retry exhaustion on a remote backend); its ``success_rate``
    is NaN and it can never be adopted.
    """

    sequence: NativeGateSequence
    success_rate: float
    link: Optional[Link]
    role: str  # "reference" | "candidate"
    accepted: bool
    failed: bool = False


@dataclass(frozen=True)
class ProbeBatch:
    """One schedulable unit of the localized search.

    The search only ever batches *within* one link's candidate set (the
    continuous reference update happens between links), so a batch is
    the natural quantum of scheduling: a service can interleave batches
    from many in-flight searches, coalesce them into one calibration
    window, or run them through any executor — the algorithm itself
    neither knows nor cares who executes its probes.

    Attributes:
        kind: ``"reference"`` (the single Step-2 probe) or
            ``"candidates"`` (one link's mass-replacement batch).
        sequences: The sequences to probe, in canonical order; the
            driver must return one rate (or ``None`` for a permanently
            failed probe job) per sequence, in the same order.
        link: The link under evaluation (``None`` for the reference).
        pass_number: Which link sweep this batch belongs to.
    """

    kind: str
    sequences: Tuple[NativeGateSequence, ...]
    link: Optional[Link] = None
    pass_number: int = 0

    def __len__(self) -> int:
        return len(self.sequences)


@dataclass
class SearchTrace:
    """Full audit trail of a localized search."""

    probes: List[ProbeRecord] = field(default_factory=list)
    reference_history: List[NativeGateSequence] = field(default_factory=list)
    #: Links whose probing was impaired by failed jobs and therefore
    #: kept the calibration-fidelity (reference) gate choice.
    degraded_links: List[Link] = field(default_factory=list)

    @property
    def num_probes(self) -> int:
        return len(self.probes)

    @property
    def num_failed(self) -> int:
        """Probe jobs that failed permanently (no counts returned)."""
        return sum(1 for p in self.probes if p.failed)

    @property
    def num_updates(self) -> int:
        """How many times the reference was replaced."""
        return sum(1 for p in self.probes if p.accepted and p.role == "candidate")

    def best(self) -> ProbeRecord:
        measured = [p for p in self.probes if not p.failed]
        if not measured:
            raise SearchError("empty search trace")
        return max(measured, key=lambda p: p.success_rate)


def localized_search(
    probe: Optional[ProbeFunction],
    initial: NativeGateSequence,
    gate_options: Mapping[Link, Sequence[str]],
    link_order: Optional[Sequence[Link]] = None,
    max_passes: int = 1,
    batch_probe: Optional[BatchProbeFunction] = None,
) -> Tuple[NativeGateSequence, SearchTrace]:
    """Run the localized per-link search from an initial reference.

    Args:
        probe: Evaluates a sequence, returning its success rate (higher
            is better). Called ``1 + sum(|options|-1)`` times per pass.
        initial: The reference sequence to start from (Step 2). Must be
            link-uniform — mass replacement presumes one gate per link.
        gate_options: Available native gates per link.
        link_order: Link visit order; defaults to the sequence's program
            order (the paper's default).
        max_passes: How many full link sweeps to run. The paper's ANGEL
            is the single-pass algorithm; extra passes are our extension
            addressing its Section VI-E limitation (1) — the search
            stops early once a pass produces no update, so later passes
            only spend probes when they can still help.
        batch_probe: Evaluates a whole batch of sequences at once,
            returning their success rates in order; overrides ``probe``.
            The search only ever batches *within* one link's candidate
            set — the continuous reference update happens between links,
            so batched and one-at-a-time probing are semantically
            identical. A returned rate may be ``None``: that probe job
            failed permanently (remote backend gave up on it).

    Failure semantics (graceful degradation): a failed candidate probe
    simply cannot win its link; if *every* alternative on a link failed,
    or the reference itself was never measured, the link keeps the
    current reference gate — which, absent earlier wins on that same
    link, is the calibration-fidelity (noise-adaptive) choice — and is
    recorded in ``trace.degraded_links``. The probe *budget* is spent
    identically either way (``1 + sum(|options|-1)`` submissions per
    pass), so Table II's accounting survives a flaky service.

    Returns:
        ``(best_sequence, trace)`` — the final reference and the full
        probe log.
    """
    if batch_probe is not None:
        evaluate = batch_probe
    elif probe is not None:
        evaluate = lambda sequences: [probe(s) for s in sequences]
    else:
        raise SearchError("either probe or batch_probe is required")
    plan = localized_search_plan(
        initial, gate_options, link_order=link_order, max_passes=max_passes
    )
    return drive_search_plan(plan, evaluate)


def drive_search_plan(
    plan: "SearchPlan",
    evaluate: BatchProbeFunction,
) -> Tuple[NativeGateSequence, SearchTrace]:
    """Run a search plan to completion with a synchronous evaluator.

    The inline counterpart of a scheduler stepping the plan batch by
    batch: every yielded :class:`ProbeBatch` is evaluated immediately
    and the rates sent back. An exception from ``evaluate`` is thrown
    *into* the generator so its open spans unwind with error status,
    exactly as the pre-seam inline search did.
    """
    try:
        batch = plan.send(None)  # type: ignore[arg-type]
        while True:
            try:
                rates = evaluate(list(batch.sequences))
            except BaseException as exc:
                plan.throw(exc)
                raise  # pragma: no cover - throw() re-raises
            batch = plan.send(list(rates))
    except StopIteration as stop:
        return stop.value


#: The generator type a scheduler drives: yields probe batches, receives
#: their rates via ``send``, returns ``(best_sequence, trace)``.
SearchPlan = Generator[
    ProbeBatch, List[Optional[float]], Tuple[NativeGateSequence, SearchTrace]
]


def localized_search_plan(
    initial: NativeGateSequence,
    gate_options: Mapping[Link, Sequence[str]],
    link_order: Optional[Sequence[Link]] = None,
    max_passes: int = 1,
    observe: bool = True,
) -> SearchPlan:
    """The localized search as a resumable plan of schedulable batches.

    Same algorithm as :func:`localized_search`, inverted: instead of
    calling a probe function, the plan *yields* each :class:`ProbeBatch`
    and suspends until the driver sends back one rate per sequence
    (``None`` marking a permanently failed probe job). The driver may
    execute batches through any executor, interleave many plans, or
    coalesce batches across plans — the probe-order, seed, and
    continuous-update semantics are identical to the inline search
    because the batch sequence is identical.

    Args:
        observe: Emit ``search``/``search.pass``/``search.link`` spans
            on the active tracer. Drivers interleaving many plans (the
            multi-tenant service) disable this so one request's spans
            never nest inside another's.

    Validation errors (bad ``max_passes``, non-uniform ``initial``,
    unknown links) raise here, before the first batch is yielded.
    """
    if max_passes < 1:
        raise SearchError("max_passes must be at least 1")
    if not initial.is_link_uniform():
        raise SearchError(
            "initial reference must assign one gate per link "
            "(mass replacement granularity)"
        )
    links = list(link_order) if link_order is not None else initial.links_used()
    used = set(initial.links_used())
    for link in links:
        if link not in used:
            raise SearchError(f"link {link} is not used by the program")
    return _search_generator(initial, gate_options, links, max_passes, observe)


def _receive(
    rates: Optional[List[Optional[float]]], batch: ProbeBatch
) -> List[Optional[float]]:
    if rates is None or len(rates) != len(batch.sequences):
        got = 0 if rates is None else len(rates)
        raise SearchError(
            f"batch probe returned {got} rates "
            f"for {len(batch.sequences)} candidates"
        )
    return rates


def _search_generator(
    initial: NativeGateSequence,
    gate_options: Mapping[Link, Sequence[str]],
    links: List[Link],
    max_passes: int,
    observe: bool,
) -> SearchPlan:
    trace = SearchTrace()
    tracer = obs.active_tracer() if observe else None
    search_span = (
        tracer.span("search", links=len(links), max_passes=max_passes)
        if tracer
        else obs.NULL_SPAN
    )
    with search_span:
        reference = initial
        ref_span = (
            tracer.span("search.reference") if tracer else obs.NULL_SPAN
        )
        with ref_span:
            batch = ProbeBatch("reference", (reference,))
            reference_sr = _receive((yield batch), batch)[0]
            reference_failed = reference_sr is None
            if tracer:
                ref_span.set(
                    success_rate=reference_sr, failed=reference_failed
                )
        trace.probes.append(
            ProbeRecord(
                reference,
                float("nan") if reference_failed else reference_sr,
                None,
                "reference",
                True,
                failed=reference_failed,
            )
        )
        trace.reference_history.append(reference)

        for _pass_number in range(max_passes):
            updated_this_pass = False
            pass_span = (
                tracer.span("search.pass", number=_pass_number)
                if tracer
                else obs.NULL_SPAN
            )
            with pass_span:
                for link in links:
                    current_gate = reference.gates_on_link(link)[0]
                    alternatives = [
                        g for g in gate_options[link] if g != current_gate
                    ]
                    link_span = (
                        tracer.span(
                            "search.link",
                            link=str(link),
                            candidates=len(alternatives),
                        )
                        if tracer
                        else obs.NULL_SPAN
                    )
                    with link_span:
                        best_candidate: Optional[NativeGateSequence] = None
                        best_candidate_sr = reference_sr
                        records: List[ProbeRecord] = []
                        # All of one link's alternatives go to the device
                        # as a single batch; the reference update below
                        # happens after the batch, exactly as in the
                        # one-at-a-time formulation.
                        candidates = [
                            reference.with_link_gate(link, gate)
                            for gate in alternatives
                        ]
                        if candidates:
                            batch = ProbeBatch(
                                "candidates",
                                tuple(candidates),
                                link=link,
                                pass_number=_pass_number,
                            )
                            rates = _receive((yield batch), batch)
                        else:
                            rates = []
                        for candidate, candidate_sr in zip(candidates, rates):
                            probe_failed = candidate_sr is None
                            records.append(
                                ProbeRecord(
                                    candidate,
                                    float("nan")
                                    if probe_failed
                                    else candidate_sr,
                                    link,
                                    "candidate",
                                    False,
                                    failed=probe_failed,
                                )
                            )
                            # A candidate can only win if both it and the
                            # working reference were actually measured.
                            if (
                                not probe_failed
                                and reference_sr is not None
                                and candidate_sr > best_candidate_sr
                            ):
                                best_candidate = candidate
                                best_candidate_sr = candidate_sr
                        degraded = alternatives and (
                            reference_sr is None
                            or all(r is None for r in rates)
                        )
                        if degraded:
                            # Degraded: no comparison was possible on this
                            # link; the reference (calibration-fidelity)
                            # choice stands.
                            if link not in trace.degraded_links:
                                trace.degraded_links.append(link)
                        if best_candidate is not None:
                            # Continuous update: adopt before visiting the
                            # next link.
                            records = [
                                ProbeRecord(
                                    r.sequence,
                                    r.success_rate,
                                    r.link,
                                    r.role,
                                    r.sequence == best_candidate,
                                    failed=r.failed,
                                )
                                for r in records
                            ]
                            reference = best_candidate
                            reference_sr = best_candidate_sr
                            trace.reference_history.append(reference)
                            updated_this_pass = True
                        trace.probes.extend(records)
                        if tracer:
                            link_span.set(
                                updated=best_candidate is not None,
                                degraded=bool(degraded),
                            )
                if tracer:
                    pass_span.set(updated=updated_this_pass)
            if not updated_this_pass:
                break
        if tracer:
            search_span.set(
                probes=trace.num_probes,
                updates=trace.num_updates,
                failed=trace.num_failed,
                degraded=len(trace.degraded_links),
            )

    return reference, trace
