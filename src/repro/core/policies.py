"""Native gate selection policies: the baseline and the oracle.

* :func:`noise_adaptive_sequence` — the paper's baseline: each CNOT uses
  the native gate with the highest *calibrated* fidelity on its link
  (footnote 1: the Murali noise-adaptive strategy extended to
  nativization). Its quality is bounded by the calibration data's
  accuracy, which is exactly the gap ANGEL closes.
* :func:`random_sequence` — the random reference of the Fig. 20 ablation.
* :func:`runtime_best` — the oracle: execute *every* sequence of the
  actual program on the device and keep the best. Exponentially many
  probes (Table II's "Exhaustive Search" column); used to upper-bound
  ANGEL in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..compiler.nativization import CnotSite
from ..compiler.passes import CompiledProgram
from ..device.calibration import CalibrationData
from ..device.device import RigettiAspenDevice
from ..device.topology import Link
from ..exceptions import SearchError
from ..exec import Job, get_executor
from ..metrics import success_rate_from_counts
from .sequence import NativeGateSequence, enumerate_sequences

__all__ = [
    "noise_adaptive_sequence",
    "random_sequence",
    "SequenceEvaluation",
    "runtime_best",
]


def noise_adaptive_sequence(
    sites: Sequence[CnotSite],
    calibration: CalibrationData,
    gate_options: Mapping[Link, Sequence[str]],
) -> NativeGateSequence:
    """Per-link best-calibrated-fidelity selection (baseline policy).

    All sites on a link get the same gate because the choice depends only
    on the link's calibration records, so the result is link-uniform —
    matching ANGEL's search granularity and making it a valid reference
    sequence.
    """
    link_gates: Dict[Link, str] = {}
    for site in sites:
        if site.link in link_gates:
            continue
        options = list(gate_options[site.link])
        if not options:
            raise SearchError(f"no native gates on link {site.link}")
        calibrated = [
            g
            for g in options
            if g in calibration.gates_calibrated_on(site.link)
        ]
        pool = calibrated or options
        link_gates[site.link] = max(
            pool,
            key=lambda g: (
                calibration.two_qubit_fidelity(site.link, g)
                if g in calibrated
                else 0.0,
                -options.index(g),
            ),
        )
    return NativeGateSequence.from_link_gates(tuple(sites), link_gates)


def random_sequence(
    sites: Sequence[CnotSite],
    gate_options: Mapping[Link, Sequence[str]],
    rng: np.random.Generator,
    link_uniform: bool = True,
) -> NativeGateSequence:
    """A uniformly random sequence (Fig. 20's random reference).

    With *link_uniform* (default) one gate is drawn per link, keeping the
    sequence in the same family ANGEL's mass replacement explores.
    """
    sites = tuple(sites)
    if link_uniform:
        link_gates: Dict[Link, str] = {}
        for site in sites:
            if site.link not in link_gates:
                options = tuple(gate_options[site.link])
                link_gates[site.link] = options[
                    int(rng.integers(len(options)))
                ]
        return NativeGateSequence.from_link_gates(sites, link_gates)
    gates = tuple(
        tuple(gate_options[s.link])[
            int(rng.integers(len(gate_options[s.link])))
        ]
        for s in sites
    )
    return NativeGateSequence(sites, gates)


@dataclass(frozen=True)
class SequenceEvaluation:
    """One on-device evaluation of one sequence."""

    sequence: NativeGateSequence
    success_rate: float


def runtime_best(
    compiled: CompiledProgram,
    shots: int = 1024,
    granularity: str = "site",
    ideal: Optional[Dict[str, float]] = None,
    seed: Optional[int] = None,
) -> Tuple[SequenceEvaluation, List[SequenceEvaluation]]:
    """Exhaustively execute every sequence of the real program.

    This is the paper's "Runtime Best" policy: it requires knowing the
    program's correct output (we have it from the ideal simulator) and
    ``prod |options|`` device jobs, so it exists purely as an oracle to
    measure how much of the attainable gap ANGEL closes.

    Returns ``(best, all_evaluations)`` in enumeration order.
    """
    if ideal is None:
        ideal = compiled.ideal_distribution()
    options = compiled.gate_options()
    executor = get_executor(compiled.device)
    evaluations: List[SequenceEvaluation] = []
    best: Optional[SequenceEvaluation] = None
    for number, sequence in enumerate(
        enumerate_sequences(compiled.sites, options, granularity=granularity)
    ):
        circuit = compiled.nativized(sequence, name_suffix=f"_rb{number}")
        result = executor.submit(
            Job(
                circuit,
                shots,
                seed=None if seed is None else seed + number,
                tag="enumerate",
            )
        )
        evaluation = SequenceEvaluation(
            sequence=sequence,
            success_rate=success_rate_from_counts(ideal, result.counts),
        )
        evaluations.append(evaluation)
        if best is None or evaluation.success_rate > best.success_rate:
            best = evaluation
    if best is None:
        raise SearchError("program has no CNOT sites to enumerate")
    return best, evaluations
