"""Clifford Data Regression (CDR) — the paper's Section VII-B comparator.

CDR (Czarnik et al., Quantum 5, 592) mitigates errors by *post-
processing*: run near-Clifford training circuits whose ideal results are
classically computable, fit a linear map from noisy to ideal
expectation values, and apply the map to the target program's noisy
result. The paper contrasts it with ANGEL (which improves the circuit
itself, before execution) and proposes composing them as future work:
"we expect ANGEL can further improve the effectiveness of CDR". This
module implements CDR so that composition is measurable (see
``benchmarks/bench_extension_cdr.py``).

Training circuits are built like CopyCats, but with *randomized* Clifford
substitutions: each non-Clifford single-qubit gate is replaced by a
group element sampled with probability ``exp(-distance / sigma)`` so the
training set clusters around the target circuit while spanning enough
variation to fit the regression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.clifford import single_qubit_clifford_group
from ..circuit.gates import Gate
from ..compiler.nativization import nativize
from ..compiler.passes import CompiledProgram
from ..exceptions import SearchError
from ..exec import Job, get_executor
from ..linalg import phase_invariant_distance
from ..sim.stabilizer import StabilizerSimulator
from ..sim.statevector import StatevectorSimulator
from .copycat import _snap_two_qubit
from .sequence import NativeGateSequence

__all__ = ["parity_expectation", "CdrFit", "CliffordDataRegression"]


def parity_expectation(distribution: Mapping[str, float]) -> float:
    """The Z...Z parity ``sum_x (-1)^{|x|} p(x)`` of a distribution.

    The observable CDR corrects here: diagonal, computable from counts,
    and sensitive to the bit-flip-like errors nativization choices
    modulate.
    """
    total = 0.0
    for bitstring, prob in distribution.items():
        sign = -1.0 if bitstring.count("1") % 2 else 1.0
        total += sign * prob
    return total


@dataclass(frozen=True)
class CdrFit:
    """A fitted noisy->ideal linear map with its training data."""

    slope: float
    intercept: float
    training_noisy: Tuple[float, ...]
    training_ideal: Tuple[float, ...]

    def mitigate(self, noisy_value: float) -> float:
        """Apply the regression; clipped to the physical range [-1, 1]."""
        corrected = self.slope * noisy_value + self.intercept
        return float(max(-1.0, min(1.0, corrected)))


class CliffordDataRegression:
    """CDR mitigation for parity expectations of compiled programs.

    Args:
        device: The device training and target circuits run on.
        num_training: Training circuits to generate.
        shots: Shots per training-circuit execution.
        sigma: Substitution temperature — small values keep training
            circuits near the target (operator-norm distance weighting).
        seed: Sampling seed.
    """

    def __init__(
        self,
        device,
        num_training: int = 16,
        shots: int = 1024,
        sigma: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_training < 2:
            raise SearchError("CDR needs at least two training circuits")
        self.device = device
        self.num_training = num_training
        self.shots = shots
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)
        self._group = [
            element
            for element in single_qubit_clifford_group()
            if not element.hadamard_like
        ]

    # ------------------------------------------------------------------
    def _sample_replacement(self, gate: Gate) -> List[Gate]:
        """A random Clifford replacement, weighted toward proximity."""
        matrix = gate.matrix()
        distances = np.array(
            [
                phase_invariant_distance(matrix, element.matrix)
                for element in self._group
            ]
        )
        weights = np.exp(-distances / max(self.sigma, 1e-6))
        weights /= weights.sum()
        choice = int(self._rng.choice(len(self._group), p=weights))
        return self._group[choice].gates(gate.qubits[0])

    def _training_circuit(self, circuit: QuantumCircuit, index: int) -> QuantumCircuit:
        """One near-Clifford training variant of the routed circuit."""
        training = QuantumCircuit(
            circuit.num_qubits, name=f"{circuit.name}_cdr{index}"
        )
        for gate in circuit:
            if gate.is_barrier:
                training.barrier()
            elif not gate.is_unitary or gate.is_clifford:
                training.append(gate)
            elif gate.num_qubits == 1:
                for replacement in self._sample_replacement(gate):
                    training.append(replacement)
            else:
                training.append(_snap_two_qubit(gate))
        return training

    # ------------------------------------------------------------------
    def fit(
        self,
        compiled: CompiledProgram,
        sequence: NativeGateSequence,
    ) -> CdrFit:
        """Fit the noisy->ideal map for one program + native sequence.

        Every training circuit is nativized under the *same* sequence as
        the target, so the regression learns exactly the noise
        environment the target will face — this is where a better
        nativization (ANGEL's) directly improves CDR's training data.
        """
        noisy_values: List[float] = []
        ideal_values: List[float] = []
        stabilizer = StabilizerSimulator()
        for index in range(self.num_training):
            training = self._training_circuit(compiled.scheduled, index)
            compact, _ = training.compacted()
            if compact.is_clifford():
                ideal = stabilizer.distribution(compact)
            else:  # pragma: no cover - snap rules make this unreachable
                ideal = StatevectorSimulator().distribution(compact)
            native = nativize(
                training,
                sequence.as_site_map(),
                native_gates=self.device.native_gates,
            )
            result = get_executor(self.device).submit(
                Job(
                    native,
                    self.shots,
                    seed=int(self._rng.integers(2**31)),
                    tag="cdr_training",
                )
            )
            counts = result.counts
            total = sum(counts.values())
            noisy = parity_expectation(
                {k: v / total for k, v in counts.items()}
            )
            noisy_values.append(noisy)
            ideal_values.append(parity_expectation(ideal))
        slope, intercept = _least_squares(noisy_values, ideal_values)
        return CdrFit(
            slope=slope,
            intercept=intercept,
            training_noisy=tuple(noisy_values),
            training_ideal=tuple(ideal_values),
        )

    def mitigated_expectation(
        self,
        compiled: CompiledProgram,
        sequence: NativeGateSequence,
        target_shots: int = 4096,
    ) -> Tuple[float, float, CdrFit]:
        """Run the target and return (raw, mitigated, fit)."""
        fit = self.fit(compiled, sequence)
        native = compiled.nativized(sequence, name_suffix="_cdr_target")
        result = get_executor(self.device).submit(
            Job(
                native,
                target_shots,
                seed=int(self._rng.integers(2**31)),
                tag="cdr_target",
            )
        )
        counts = result.counts
        total = sum(counts.values())
        raw = parity_expectation({k: v / total for k, v in counts.items()})
        return raw, fit.mitigate(raw), fit


def _least_squares(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Ordinary least squares y = a*x + b, degenerate-safe."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    var = np.var(x_arr)
    if var < 1e-12:
        # All training points identical: identity map with offset.
        return 1.0, float(np.mean(y_arr) - np.mean(x_arr))
    slope = float(np.cov(x_arr, y_arr, bias=True)[0, 1] / var)
    intercept = float(np.mean(y_arr) - slope * np.mean(x_arr))
    return slope, intercept
