"""CopyCat construction (paper Section IV-E, Step 1).

A CopyCat imitates a routed program's structure — identical CNOT/SWAP
skeleton, hence identical CNOT sites — while being classically
simulable:

* every non-Clifford single-qubit gate is replaced by its nearest
  Clifford under the operator norm (Eq. 1), excluding Hadamard-like
  elements, which would push the probe state toward a flat, selection-
  insensitive distribution;
* except that up to ``max_non_clifford`` non-Clifford gates in the
  circuit's *initial layer* are retained verbatim, keeping the probe
  state structured (the refinement of Fig. 13, bounded at 20 to keep the
  classical simulation tractable);
* non-Clifford *two-qubit* rotations (e.g. a raw ``CPHASE(0.3)``) snap to
  the nearest Clifford member of their own family.

The CopyCat's ideal output is computed on the stabilizer backend when it
is pure Clifford (poly-time — the paper's scalability claim) and on the
statevector backend when initial-layer non-Cliffords were kept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.clifford import clifford_replacement_gates
from ..circuit.dag import first_layer_indices
from ..circuit.gates import Gate
from ..exceptions import CircuitError
from ..sim.stabilizer import StabilizerSimulator
from ..sim.statevector import StatevectorSimulator

__all__ = ["CopyCat", "build_copycat"]

#: The paper's tractability budget for retained non-Clifford gates.
DEFAULT_NON_CLIFFORD_BUDGET = 20


@dataclass(frozen=True)
class CopyCat:
    """A program's Clifford-dominated imitation.

    Attributes:
        circuit: The CopyCat circuit (same register and CNOT sites as the
            source routed circuit).
        source_name: Name of the imitated circuit.
        replaced: ``(instruction index in source, original gate,
            replacement gates)`` for every substitution performed.
        retained_non_clifford: Source instruction indices whose
            non-Clifford gate was kept (initial layer, within budget).
        total_replacement_distance: Sum of operator-norm distances of all
            substitutions — a crude imitation-quality figure (0 for an
            already-Clifford program).
    """

    circuit: QuantumCircuit
    source_name: str
    replaced: Tuple[Tuple[int, Gate, Tuple[Gate, ...]], ...]
    retained_non_clifford: Tuple[int, ...]
    total_replacement_distance: float

    @property
    def is_pure_clifford(self) -> bool:
        return not self.retained_non_clifford

    def ideal_distribution(self) -> Dict[str, float]:
        """Noise-free output distribution of the CopyCat.

        Pure-Clifford CopyCats use the stabilizer simulator; otherwise
        the (compacted) statevector simulator. Keys align with device
        output bit order because measurement order is preserved.
        """
        compact, _ = self.circuit.compacted()
        if compact.is_clifford():
            return StabilizerSimulator().distribution(compact)
        return StatevectorSimulator().distribution(compact)


def build_copycat(
    circuit: QuantumCircuit,
    max_non_clifford: int = DEFAULT_NON_CLIFFORD_BUDGET,
    exclude_hadamard_like: bool = True,
    fixed_replacement: Optional[str] = None,
) -> CopyCat:
    """Derive the CopyCat of a (routed, pre-nativization) circuit.

    Args:
        circuit: The scheduled routed program. Its two-qubit skeleton
            (cnot/swap/cz/...) is preserved exactly so CNOT sites match.
        max_non_clifford: Budget of initial-layer non-Clifford gates kept
            verbatim. ``0`` yields a Clifford-only CopyCat (paper
            Fig. 13b).
        exclude_hadamard_like: Exclude superposition-creating Cliffords
            from the replacement candidates (paper's "does not utilize
            the H").
        fixed_replacement: Replace *every* non-Clifford single-qubit gate
            with this named gate instead of the nearest Clifford — used
            by the Fig. 12 study of replacement quality (X/Z/S CopyCats).

    Raises:
        CircuitError: If a non-Clifford two-qubit gate has no snap rule.
    """
    if max_non_clifford < 0:
        raise CircuitError("max_non_clifford must be non-negative")
    keep_budget = 0 if fixed_replacement is not None else max_non_clifford
    initial_layer = set(first_layer_indices(circuit))

    copycat = QuantumCircuit(
        circuit.num_qubits, name=f"{circuit.name}_copycat"
    )
    replaced: List[Tuple[int, Gate, Tuple[Gate, ...]]] = []
    retained: List[int] = []
    total_distance = 0.0

    for index, gate in enumerate(circuit):
        if gate.is_barrier or gate.is_measurement or gate.is_clifford:
            if gate.is_barrier:
                copycat.barrier()
            else:
                copycat.append(gate)
            continue
        # Non-Clifford unitary.
        if gate.num_qubits == 1:
            if index in initial_layer and len(retained) < keep_budget:
                retained.append(index)
                copycat.append(gate)
                continue
            if fixed_replacement is not None:
                replacement = [Gate(fixed_replacement, gate.qubits)]
                from ..linalg import phase_invariant_distance

                distance = phase_invariant_distance(
                    gate.matrix(), replacement[0].matrix()
                )
            else:
                replacement, distance = clifford_replacement_gates(
                    gate, exclude_hadamard_like=exclude_hadamard_like
                )
            for new_gate in replacement:
                copycat.append(new_gate)
            replaced.append((index, gate, tuple(replacement)))
            total_distance += distance
            continue
        if gate.num_qubits == 2:
            snapped = _snap_two_qubit(gate)
            copycat.append(snapped)
            replaced.append((index, gate, (snapped,)))
            total_distance += _two_qubit_snap_distance(gate, snapped)
            continue
        raise CircuitError(f"cannot CopyCat {gate.num_qubits}-qubit gate")

    return CopyCat(
        circuit=copycat,
        source_name=circuit.name,
        replaced=tuple(replaced),
        retained_non_clifford=tuple(retained),
        total_replacement_distance=total_distance,
    )


def _snap_two_qubit(gate: Gate) -> Gate:
    """Snap a non-Clifford two-qubit rotation to its family's Clifford.

    ``CPHASE(theta)`` -> CZ if theta is nearer pi (mod 2pi) than 0, else
    identity is expressed as ``CPHASE(0)``; ``XY(theta)`` analogously to
    iSWAP/identity.
    """
    if gate.name in ("cphase", "xy"):
        theta = math.remainder(gate.params[0], 2 * math.pi)
        target = math.pi if abs(theta) > math.pi / 2 else 0.0
        target = math.copysign(target, theta) if target else 0.0
        return Gate(gate.name, gate.qubits, (target,))
    raise CircuitError(
        f"no Clifford snap rule for two-qubit gate {gate.name!r}"
    )


def _two_qubit_snap_distance(original: Gate, snapped: Gate) -> float:
    from ..linalg import phase_invariant_distance

    return phase_invariant_distance(original.matrix(), snapped.matrix())
