"""The ANGEL framework facade (paper Section IV).

:class:`Angel` wires the pieces together, step for step with Fig. 11:

1. build a CopyCat of the scheduled-and-routed program;
2. initialize the reference sequence noise-adaptively from calibration;
3. generate per-link mass-replacement candidates;
4. probe each candidate by nativizing the *CopyCat* under it and running
   it on the device, continuously updating the reference;
5. nativize the *input program* with the learned sequence.

Probing runs ``1 + 2L`` CopyCats for a program using ``L`` links with all
three natives available (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..compiler.passes import CompiledProgram, transpile
from ..device.calibration import CalibrationData
from ..device.device import RigettiAspenDevice
from ..device.topology import Link
from ..exceptions import SearchError
from ..metrics import success_rate_from_counts
from .copycat import DEFAULT_NON_CLIFFORD_BUDGET, CopyCat, build_copycat
from .policies import noise_adaptive_sequence, random_sequence
from .search import SearchTrace, localized_search
from .sequence import NativeGateSequence

__all__ = ["AngelConfig", "AngelResult", "Angel"]


@dataclass(frozen=True)
class AngelConfig:
    """Tunables of the ANGEL framework.

    Attributes:
        probe_shots: Shots per CopyCat probe execution.
        max_non_clifford: Initial-layer non-Clifford retention budget.
        exclude_hadamard_like: Exclude H-like Clifford replacements.
        reference: ``"noise_adaptive"`` (default, paper Step 2) or
            ``"random"`` (the Fig. 20 ablation).
        link_order: ``"program"`` (default) or ``"random"`` — candidate
            generation order (Step 3 notes program order keeps the
            design simple; the ablation bench explores the alternative).
        max_passes: Link sweeps to run; 1 is the paper's algorithm,
            more passes extend the search (Section VI-E limitation 1).
        seed: Seed for probe sampling and any randomized choices.
    """

    probe_shots: int = 1024
    max_non_clifford: int = DEFAULT_NON_CLIFFORD_BUDGET
    exclude_hadamard_like: bool = True
    reference: str = "noise_adaptive"
    link_order: str = "program"
    max_passes: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.probe_shots < 1:
            raise SearchError("probe_shots must be positive")
        if self.max_passes < 1:
            raise SearchError("max_passes must be at least 1")
        if self.reference not in ("noise_adaptive", "random"):
            raise SearchError(f"unknown reference policy {self.reference!r}")
        if self.link_order not in ("program", "random"):
            raise SearchError(f"unknown link order {self.link_order!r}")


@dataclass
class AngelResult:
    """Everything ANGEL learned about one program.

    Attributes:
        sequence: The learned (optimal) native gate sequence.
        reference_sequence: Where the search started.
        copycat: The probe circuit used.
        copycat_ideal: The CopyCat's classically computed distribution.
        trace: Full probe audit trail.
        copycats_executed: Number of device jobs spent probing
            (``1 + 2L`` with all gates available).
    """

    sequence: NativeGateSequence
    reference_sequence: NativeGateSequence
    copycat: CopyCat
    copycat_ideal: Dict[str, float]
    trace: SearchTrace
    copycats_executed: int


class Angel:
    """Application-specific Native Gate Selection.

    Args:
        device: The NISQ device probes and final programs run on.
        calibration: Vendor calibration data (reference initialization;
            possibly stale — that is the point).
        config: Framework tunables.
    """

    def __init__(
        self,
        device: RigettiAspenDevice,
        calibration: CalibrationData,
        config: Optional[AngelConfig] = None,
    ) -> None:
        self.device = device
        self.calibration = calibration
        self.config = config or AngelConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def select(self, compiled: CompiledProgram) -> AngelResult:
        """Learn the optimal native gate sequence for a compiled program.

        Runs Steps 1-4 of Fig. 11. The input program itself is *not*
        executed — only its CopyCat is.
        """
        if compiled.num_cnot_sites == 0:
            raise SearchError(
                "program has no CNOT sites; nothing to select"
            )
        copycat = build_copycat(
            compiled.scheduled,
            max_non_clifford=self.config.max_non_clifford,
            exclude_hadamard_like=self.config.exclude_hadamard_like,
        )
        copycat_ideal = copycat.ideal_distribution()
        gate_options = compiled.gate_options()

        reference = self._initial_reference(compiled, gate_options)
        link_order = self._link_order(reference)

        probes_run = 0

        def probe(sequence: NativeGateSequence) -> float:
            nonlocal probes_run
            # Nativize the CopyCat circuit itself under the candidate
            # sequence (identical CNOT skeleton -> identical site map).
            probe_circuit = _nativize_copycat(
                compiled, copycat, sequence, probes_run
            )
            counts = self.device.run(
                probe_circuit,
                self.config.probe_shots,
                seed=int(self._rng.integers(2**31)),
            )
            probes_run += 1
            return success_rate_from_counts(copycat_ideal, counts)

        best, trace = localized_search(
            probe,
            reference,
            gate_options,
            link_order=link_order,
            max_passes=self.config.max_passes,
        )
        return AngelResult(
            sequence=best,
            reference_sequence=reference,
            copycat=copycat,
            copycat_ideal=copycat_ideal,
            trace=trace,
            copycats_executed=probes_run,
        )

    def compile_and_select(
        self, circuit: QuantumCircuit
    ) -> Tuple[CompiledProgram, AngelResult]:
        """Convenience: transpile then select in one call."""
        compiled = transpile(circuit, self.device, self.calibration)
        return compiled, self.select(compiled)

    def nativize(
        self, compiled: CompiledProgram, result: AngelResult
    ) -> QuantumCircuit:
        """Step 5: nativize the input program with the learned sequence."""
        return compiled.nativized(result.sequence, name_suffix="_angel")

    # ------------------------------------------------------------------
    def expected_probe_count(self, compiled: CompiledProgram) -> int:
        """The ``1 + sum(|options|-1)`` probe budget (Table II)."""
        options = compiled.gate_options()
        return 1 + sum(
            len(options[link]) - 1 for link in compiled.links_used()
        )

    def _initial_reference(
        self,
        compiled: CompiledProgram,
        gate_options: Mapping[Link, Sequence[str]],
    ) -> NativeGateSequence:
        if self.config.reference == "random":
            return random_sequence(compiled.sites, gate_options, self._rng)
        return noise_adaptive_sequence(
            compiled.sites, self.calibration, gate_options
        )

    def _link_order(
        self, reference: NativeGateSequence
    ) -> Optional[List[Link]]:
        if self.config.link_order == "random":
            links = reference.links_used()
            order = list(links)
            self._rng.shuffle(order)
            return order
        return None  # program order (default inside the search)


def _nativize_copycat(
    compiled: CompiledProgram,
    copycat: CopyCat,
    sequence: NativeGateSequence,
    probe_number: int,
) -> QuantumCircuit:
    """Nativize the CopyCat circuit under a candidate sequence.

    The CopyCat shares the program's CNOT skeleton, so its site indices
    coincide with the compiled program's and the same sequence applies.
    """
    from ..compiler.nativization import nativize

    return nativize(
        copycat.circuit,
        sequence.as_site_map(),
        native_gates=compiled.device.native_gates,
        name_suffix=f"_probe{probe_number}",
    )
