"""The ANGEL framework facade (paper Section IV).

:class:`Angel` wires the pieces together, step for step with Fig. 11:

1. build a CopyCat of the scheduled-and-routed program;
2. initialize the reference sequence noise-adaptively from calibration;
3. generate per-link mass-replacement candidates;
4. probe each candidate by nativizing the *CopyCat* under it and running
   it on the device, continuously updating the reference;
5. nativize the *input program* with the learned sequence.

Probing runs ``1 + 2L`` CopyCats for a program using ``L`` links with all
three natives available (Table II).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..compiler.nativization import nativize, single_qubit_native
from ..compiler.optimize import cleanup_native_circuit
from ..compiler.passes import CompiledProgram, transpile
from ..device.calibration import CalibrationData
from ..device.device import RigettiAspenDevice
from ..device.native_gates import NativeGateSet, cnot_decomposition
from ..device.topology import Link
from ..exceptions import CompilationError, SearchError
from ..exec import BatchExecutor, Job, get_executor
from ..metrics import success_rate_from_counts
from ..obs import runtime as obs
from .copycat import DEFAULT_NON_CLIFFORD_BUDGET, CopyCat, build_copycat
from .policies import noise_adaptive_sequence, random_sequence
from .search import ProbeBatch, SearchTrace, localized_search_plan
from .sequence import NativeGateSequence

__all__ = ["AngelConfig", "AngelResult", "Angel", "AngelProbePlan"]


@dataclass(frozen=True)
class AngelConfig:
    """Tunables of the ANGEL framework.

    Attributes:
        probe_shots: Shots per CopyCat probe execution.
        max_non_clifford: Initial-layer non-Clifford retention budget.
        exclude_hadamard_like: Exclude H-like Clifford replacements.
        reference: ``"noise_adaptive"`` (default, paper Step 2) or
            ``"random"`` (the Fig. 20 ablation).
        link_order: ``"program"`` (default) or ``"random"`` — candidate
            generation order (Step 3 notes program order keeps the
            design simple; the ablation bench explores the alternative).
        max_passes: Link sweeps to run; 1 is the paper's algorithm,
            more passes extend the search (Section VI-E limitation 1).
        seed: Seed for probe sampling and any randomized choices.
    """

    probe_shots: int = 1024
    max_non_clifford: int = DEFAULT_NON_CLIFFORD_BUDGET
    exclude_hadamard_like: bool = True
    reference: str = "noise_adaptive"
    link_order: str = "program"
    max_passes: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.probe_shots < 1:
            raise SearchError("probe_shots must be positive")
        if self.max_passes < 1:
            raise SearchError("max_passes must be at least 1")
        if self.reference not in ("noise_adaptive", "random"):
            raise SearchError(f"unknown reference policy {self.reference!r}")
        if self.link_order not in ("program", "random"):
            raise SearchError(f"unknown link order {self.link_order!r}")


@dataclass
class AngelResult:
    """Everything ANGEL learned about one program.

    Attributes:
        sequence: The learned (optimal) native gate sequence.
        reference_sequence: Where the search started.
        copycat: The probe circuit used.
        copycat_ideal: The CopyCat's classically computed distribution.
        trace: Full probe audit trail.
        copycats_executed: Number of device jobs spent probing
            (``1 + 2L`` with all gates available).
        degraded_links: Links whose probe jobs failed permanently (a
            flaky remote backend) and therefore kept the
            calibration-fidelity gate choice; empty on a healthy
            backend.
    """

    sequence: NativeGateSequence
    reference_sequence: NativeGateSequence
    copycat: CopyCat
    copycat_ideal: Dict[str, float]
    trace: SearchTrace
    copycats_executed: int
    degraded_links: Tuple[Link, ...] = ()


class Angel:
    """Application-specific Native Gate Selection.

    Args:
        device: The NISQ device probes and final programs run on.
        calibration: Vendor calibration data (reference initialization;
            possibly stale — that is the point).
        config: Framework tunables.
        executor: Execution service to submit probe jobs through.
            Defaults to the device's shared sequential executor, which
            reproduces the paper's one-probe-at-a-time semantics
            bit-for-bit; a ``mode="parallel"`` executor batches each
            link's candidates onto a process pool.
    """

    def __init__(
        self,
        device: RigettiAspenDevice,
        calibration: CalibrationData,
        config: Optional[AngelConfig] = None,
        executor: Optional[BatchExecutor] = None,
    ) -> None:
        self.device = device
        self.calibration = calibration
        self.config = config or AngelConfig()
        self.executor = (
            executor if executor is not None else get_executor(device)
        )
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def select(self, compiled: CompiledProgram) -> AngelResult:
        """Learn the optimal native gate sequence for a compiled program.

        Runs Steps 1-4 of Fig. 11. The input program itself is *not*
        executed — only its CopyCat is.
        """
        if compiled.num_cnot_sites == 0:
            raise SearchError(
                "program has no CNOT sites; nothing to select"
            )
        tracer = obs.active_tracer()
        select_span = (
            tracer.span(
                "angel.select",
                program=compiled.scheduled.name,
                sites=compiled.num_cnot_sites,
                links=len(compiled.links_used()),
                probe_shots=self.config.probe_shots,
            )
            if tracer
            else obs.NULL_SPAN
        )
        with select_span:
            return self._select(compiled, select_span)

    def _select(
        self, compiled: CompiledProgram, select_span
    ) -> AngelResult:
        plan = AngelProbePlan(self, compiled, observe=True)
        while not plan.done:
            # allow_failures: a probe job a resilient backend gave up on
            # comes back as None and degrades that link's comparison
            # instead of aborting the whole search. The budget is spent
            # either way, preserving the 1 + 2L accounting.
            plan.deliver(
                self.executor.submit_batch(
                    plan.next_jobs(), allow_failures=True
                )
            )
        plan.record_outcome(self.executor, span=select_span)
        return plan.result()

    def plan(
        self, compiled: CompiledProgram, observe: bool = False
    ) -> "AngelProbePlan":
        """The selection as a stream of schedulable probe batches.

        Where :meth:`select` runs Steps 1-4 inline, :meth:`plan` hands
        the same computation to an external driver: call
        :meth:`AngelProbePlan.next_jobs`, execute the jobs through any
        executor, :meth:`~AngelProbePlan.deliver` the results, repeat
        until :attr:`~AngelProbePlan.done`. Driving a plan to completion
        against the same executor is bit-identical to :meth:`select` —
        ``select`` itself is implemented as exactly that loop.

        ``observe`` defaults to off: schedulers interleaving plans from
        many requests must not nest one request's search spans inside
        another's batch spans.
        """
        return AngelProbePlan(self, compiled, observe=observe)

    def compile_and_select(
        self, circuit: QuantumCircuit
    ) -> Tuple[CompiledProgram, AngelResult]:
        """Convenience: transpile then select in one call."""
        compiled = transpile(circuit, self.device, self.calibration)
        return compiled, self.select(compiled)

    def nativize(
        self, compiled: CompiledProgram, result: AngelResult
    ) -> QuantumCircuit:
        """Step 5: nativize the input program with the learned sequence."""
        return compiled.nativized(result.sequence, name_suffix="_angel")

    # ------------------------------------------------------------------
    def expected_probe_count(self, compiled: CompiledProgram) -> int:
        """The ``1 + sum(|options|-1)`` probe budget (Table II)."""
        options = compiled.gate_options()
        return 1 + sum(
            len(options[link]) - 1 for link in compiled.links_used()
        )

    def _initial_reference(
        self,
        compiled: CompiledProgram,
        gate_options: Mapping[Link, Sequence[str]],
    ) -> NativeGateSequence:
        if self.config.reference == "random":
            return random_sequence(compiled.sites, gate_options, self._rng)
        return noise_adaptive_sequence(
            compiled.sites, self.calibration, gate_options
        )

    def _link_order(
        self, reference: NativeGateSequence
    ) -> Optional[List[Link]]:
        if self.config.link_order == "random":
            links = reference.links_used()
            order = list(links)
            self._rng.shuffle(order)
            return order
        return None  # program order (default inside the search)


class AngelProbePlan:
    """One selection's probe work, exposed as schedulable units.

    Wraps :func:`~repro.core.search.localized_search_plan` with the
    ANGEL-specific probe construction: each yielded
    :class:`~repro.core.search.ProbeBatch` is turned into CopyCat probe
    :class:`~repro.exec.Job` s (seeds drawn from the Angel's generator in
    candidate order, so the sampling streams match the inline
    one-probe-at-a-time loop exactly), and delivered counts are scored
    against the CopyCat's ideal distribution before resuming the search.

    Drivers alternate :meth:`next_jobs` / :meth:`deliver` until
    :attr:`done`, then read :meth:`result`. The batch sequence, RNG
    draws, and continuous-update semantics are identical to
    :meth:`Angel.select`, which is itself implemented over this class.
    """

    def __init__(
        self,
        angel: Angel,
        compiled: CompiledProgram,
        observe: bool = True,
    ) -> None:
        if compiled.num_cnot_sites == 0:
            raise SearchError(
                "program has no CNOT sites; nothing to select"
            )
        config = angel.config
        self.compiled = compiled
        self.copycat = build_copycat(
            compiled.scheduled,
            max_non_clifford=config.max_non_clifford,
            exclude_hadamard_like=config.exclude_hadamard_like,
        )
        self.copycat_ideal = self.copycat.ideal_distribution()
        gate_options = compiled.gate_options()
        self.reference = angel._initial_reference(compiled, gate_options)
        link_order = angel._link_order(self.reference)
        # The CopyCat circuit is fixed for the whole search; only the
        # native gate at each CNOT site varies between candidates. The
        # nativizer precomputes everything else (1q rewrites, barriers,
        # measurements, pass-throughs) once instead of once per probe.
        self._nativizer = _CopycatNativizer(
            self.copycat, compiled.device.native_gates
        )
        self._probe_shots = config.probe_shots
        self._rng = angel._rng
        self._plan = localized_search_plan(
            self.reference,
            gate_options,
            link_order=link_order,
            max_passes=config.max_passes,
            observe=observe,
        )
        self.probes_run = 0
        self._batch: Optional[ProbeBatch] = None
        self._jobs: Optional[List[Job]] = None
        self._result: Optional[AngelResult] = None
        self._step(None)

    # ------------------------------------------------------------------
    def _step(self, rates: Optional[List[Optional[float]]]) -> None:
        self._jobs = None
        try:
            self._batch = self._plan.send(rates)
        except StopIteration as stop:
            best, trace = stop.value
            self._batch = None
            self._result = AngelResult(
                sequence=best,
                reference_sequence=self.reference,
                copycat=self.copycat,
                copycat_ideal=self.copycat_ideal,
                trace=trace,
                copycats_executed=self.probes_run,
                degraded_links=tuple(trace.degraded_links),
            )

    @property
    def done(self) -> bool:
        """Whether the search has finished (no more batches to run)."""
        return self._batch is None

    @property
    def current_batch(self) -> Optional[ProbeBatch]:
        """The batch awaiting execution (``None`` once done)."""
        return self._batch

    def next_jobs(self) -> List[Job]:
        """The probe jobs of the pending batch.

        Jobs (and their seeds) are built once per batch, on first call —
        calling this again before :meth:`deliver` returns the same jobs,
        so a scheduler can inspect the batch size without perturbing the
        RNG stream.
        """
        if self._batch is None:
            raise SearchError("probe plan is complete; no more batches")
        if self._jobs is None:
            self._jobs = [
                Job(
                    self._probe_circuit(sequence, offset),
                    self._probe_shots,
                    seed=int(self._rng.integers(2**31)),
                    tag="probe",
                )
                for offset, sequence in enumerate(self._batch.sequences)
            ]
        return list(self._jobs)

    def _probe_circuit(
        self, sequence: NativeGateSequence, offset: int
    ) -> QuantumCircuit:
        circuit = self._nativizer.nativize(
            sequence, self.probes_run + offset
        )
        if self.compiled.optimization_level >= 2:
            # Same native cleanup the final executable gets: probes
            # shrink by the same rules, which is where the level-2
            # compile wall-time win comes from.
            circuit = cleanup_native_circuit(circuit)
        return circuit

    def deliver(
        self, results: Sequence[Optional["JobResult"]]
    ) -> None:
        """Feed one batch's results back; advances to the next batch.

        A ``None`` slot is a probe job that failed permanently; it scores
        as a failed probe and degrades that link's comparison instead of
        aborting the search (the 1 + 2L budget is spent either way).
        """
        jobs = self.next_jobs()
        if len(results) != len(jobs):
            raise SearchError(
                f"{len(results)} results delivered for "
                f"{len(jobs)} probe jobs"
            )
        self.probes_run += len(jobs)
        self._step(
            [
                None
                if result is None
                else success_rate_from_counts(
                    self.copycat_ideal, result.counts
                )
                for result in results
            ]
        )

    def result(self) -> AngelResult:
        """The finished :class:`AngelResult` (raises until :attr:`done`)."""
        if self._result is None:
            raise SearchError("probe plan is not complete yet")
        return self._result

    def record_outcome(self, executor=None, span=None) -> None:
        """Post-selection accounting, identical to :meth:`Angel.select`:
        degraded-link fallbacks on the executor ledger, span attributes,
        and the ``angel.*`` registry counters."""
        result = self.result()
        degraded = result.degraded_links
        if executor is not None and degraded:
            executor.stats.fallbacks += len(degraded)
        if span is not None:
            span.set(
                probes_run=self.probes_run,
                updates=result.trace.num_updates,
                degraded=len(degraded),
            )
        registry = obs.active_registry()
        if registry is not None:
            registry.counter("angel.selections").add(1)
            registry.counter("angel.probes").add(self.probes_run)
            registry.counter("angel.updates").add(result.trace.num_updates)
            registry.counter("angel.degraded_links").add(len(degraded))


class _CopycatNativizer:
    """Candidate-circuit factory with the sequence-independent work hoisted.

    :func:`~repro.compiler.nativization.nativize` redoes the single-qubit
    rewrites, barrier/measurement copies, and pass-through checks for
    every probe even though only the per-site two-qubit decompositions
    change between candidates. The CopyCat shares the program's CNOT
    skeleton, so its site indices coincide with the compiled program's
    and any candidate sequence applies; this class walks the CopyCat once
    into a segment list — fixed gates interleaved with CNOT-site slots —
    and each probe only stitches in the sites' ``cnot_decomposition``.

    Output is gate-for-gate identical to calling :func:`nativize` with
    ``name_suffix=f"_probe{n}"`` (pinned by ``tests/test_exec.py``).
    """

    _BARRIER = object()

    def __init__(self, copycat: CopyCat, native_gates: NativeGateSet) -> None:
        circuit = copycat.circuit
        self._num_qubits = circuit.num_qubits
        self._base_name = circuit.name
        # Each segment is either _BARRIER, a tuple of pre-nativized fixed
        # gates, or a CNOT site as (site_index, control, target).
        segments: List[object] = []
        site_index = 0

        def fixed(gates: Sequence[Gate]) -> None:
            if segments and isinstance(segments[-1], tuple) and (
                segments[-1] and isinstance(segments[-1][0], Gate)
            ):
                segments[-1] = segments[-1] + tuple(gates)
            else:
                segments.append(tuple(gates))

        for gate in circuit:
            if gate.is_barrier:
                segments.append(self._BARRIER)
            elif gate.is_measurement:
                fixed([gate])
            elif gate.num_qubits == 1:
                fixed(single_qubit_native(gate))
            elif gate.name == "cnot":
                segments.append((site_index, gate.qubits[0], gate.qubits[1]))
                site_index += 1
            elif gate.name == "swap":
                a, b = gate.qubits
                for control, target in ((a, b), (b, a), (a, b)):
                    segments.append((site_index, control, target))
                    site_index += 1
            elif gate.name == "iswap":
                fixed([Gate("xy", gate.qubits, (math.pi,))])
            elif gate.name in native_gates.two_qubit:
                fixed([gate])
            else:
                raise CompilationError(
                    f"no nativization rule for 2q gate {gate.name!r}"
                )
        self._segments = segments
        self.num_sites = site_index

    def nativize(
        self, sequence: NativeGateSequence, probe_number: int
    ) -> QuantumCircuit:
        """Build the candidate probe circuit for one sequence."""
        site_gates = sequence.as_site_map()
        native = QuantumCircuit(
            self._num_qubits,
            name=f"{self._base_name}_probe{probe_number}",
        )
        for segment in self._segments:
            if segment is self._BARRIER:
                native.barrier()
            elif segment and isinstance(segment[0], int):
                index, control, target = segment
                try:
                    assigned = site_gates[index]
                except KeyError as exc:
                    raise CompilationError(
                        f"no native gate assigned to CNOT site {index}"
                    ) from exc
                for rewritten in cnot_decomposition(
                    assigned, control, target
                ):
                    native.append(rewritten)
            else:
                for gate in segment:
                    native.append(gate)
        return native
