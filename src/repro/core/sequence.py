"""Native gate sequences: the object ANGEL searches over.

A :class:`NativeGateSequence` assigns one native two-qubit gate name to
every CNOT site of a routed program (paper Section IV: "ANGEL maintains a
list of all CNOT operations in a program, the device links they will
execute on, and the native gate used to translate each of them").

The search operates at *link* granularity (mass replacement): replacing a
link rewrites every site on that link at once. Sequences are immutable;
replacements return new objects, so the search's audit trail is cheap to
keep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from ..compiler.nativization import CnotSite
from ..device.native_gates import NATIVE_TWO_QUBIT_GATES
from ..device.topology import Link
from ..exceptions import SearchError

__all__ = ["NativeGateSequence", "enumerate_sequences"]


@dataclass(frozen=True)
class NativeGateSequence:
    """An assignment of native gates to the CNOT sites of one program.

    Attributes:
        sites: The program's CNOT sites, in program order.
        gates: ``gates[i]`` is the native gate for ``sites[i]``.
    """

    sites: Tuple[CnotSite, ...]
    gates: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.sites) != len(self.gates):
            raise SearchError(
                f"{len(self.gates)} gates for {len(self.sites)} sites"
            )
        for site, gate in zip(self.sites, self.gates):
            if gate not in NATIVE_TWO_QUBIT_GATES:
                raise SearchError(
                    f"unknown native gate {gate!r} at site {site.index}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, sites: Sequence[CnotSite], gate: str
    ) -> "NativeGateSequence":
        """Every site through the same native gate."""
        return cls(tuple(sites), tuple(gate for _ in sites))

    @classmethod
    def from_link_gates(
        cls, sites: Sequence[CnotSite], link_gates: Mapping[Link, str]
    ) -> "NativeGateSequence":
        """Build from a per-link assignment (link granularity)."""
        try:
            gates = tuple(link_gates[site.link] for site in sites)
        except KeyError as exc:
            raise SearchError(f"no gate for link {exc.args[0]}") from exc
        return cls(tuple(sites), gates)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sites)

    def as_site_map(self) -> Dict[int, str]:
        """Site index -> gate name, the form :func:`nativize` consumes."""
        return {site.index: gate for site, gate in zip(self.sites, self.gates)}

    def links_used(self) -> List[Link]:
        """Distinct links in first-use (program) order.

        This is the link visit order of ANGEL's localized search ("by
        default, ANGEL uses the program order").
        """
        seen: List[Link] = []
        for site in self.sites:
            if site.link not in seen:
                seen.append(site.link)
        return seen

    def gates_on_link(self, link: Link) -> List[str]:
        return [
            gate
            for site, gate in zip(self.sites, self.gates)
            if site.link == link
        ]

    def is_link_uniform(self) -> bool:
        """True if every link uses a single native gate throughout."""
        per_link: Dict[Link, str] = {}
        for site, gate in zip(self.sites, self.gates):
            if per_link.setdefault(site.link, gate) != gate:
                return False
        return True

    def with_link_gate(self, link: Link, gate: str) -> "NativeGateSequence":
        """Mass replacement: every site on *link* switches to *gate*."""
        if gate not in NATIVE_TWO_QUBIT_GATES:
            raise SearchError(f"unknown native gate {gate!r}")
        if link not in self.links_used():
            raise SearchError(f"link {link} is not used by this program")
        gates = tuple(
            gate if site.link == link else old
            for site, old in zip(self.sites, self.gates)
        )
        return NativeGateSequence(self.sites, gates)

    def with_site_gate(self, index: int, gate: str) -> "NativeGateSequence":
        """Replace a single site (used by the site-granular exhaustive)."""
        if not 0 <= index < len(self.sites):
            raise SearchError(f"site index {index} out of range")
        gates = list(self.gates)
        gates[index] = gate
        return NativeGateSequence(self.sites, tuple(gates))

    def label(self) -> str:
        """Compact human-readable form, e.g. ``[XY, CZ, CZ]``."""
        return "[" + ", ".join(g.upper() for g in self.gates) + "]"

    def __str__(self) -> str:
        return self.label()


def enumerate_sequences(
    sites: Sequence[CnotSite],
    gate_options: Mapping[Link, Sequence[str]],
    granularity: str = "site",
) -> Iterator[NativeGateSequence]:
    """All sequences over *sites* (the Runtime-Best search space).

    Args:
        sites: CNOT sites of the program.
        gate_options: Native gates available per link (from the device).
        granularity: ``"site"`` enumerates ``prod_i |options(link_i)|``
            assignments — the paper's ``3^N``. ``"link"`` ties all sites
            on a link together (``3^L``), the reduction the paper applies
            to toff_n3 to keep the runtime-best experiment feasible.

    Raises:
        SearchError: On an unknown granularity or a link with no options.
    """
    sites = tuple(sites)
    for site in sites:
        if not gate_options.get(site.link):
            raise SearchError(f"no native gates available on {site.link}")
    if granularity == "site":
        per_site = [tuple(gate_options[s.link]) for s in sites]
        for combo in itertools.product(*per_site):
            yield NativeGateSequence(sites, combo)
    elif granularity == "link":
        links: List[Link] = []
        for site in sites:
            if site.link not in links:
                links.append(site.link)
        per_link = [tuple(gate_options[link]) for link in links]
        for combo in itertools.product(*per_link):
            link_gates = dict(zip(links, combo))
            yield NativeGateSequence.from_link_gates(sites, link_gates)
    else:
        raise SearchError(f"unknown granularity {granularity!r}")
