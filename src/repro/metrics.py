"""Figures of merit: Success-Rate (paper Eq. 2) and rank correlation.

The paper measures program quality as ``SR = 1 - TVD(P, Q)`` where ``P``
is the ideal output distribution (from a noise-free simulator) and ``Q``
the distribution observed on hardware. Eq. 2 as printed omits the 1/2 in
the total variation distance; we use the standard halved form so SR stays
in ``[0, 1]`` for every pair of distributions (see DESIGN.md §5.1 — a
monotone rescaling that preserves all of the paper's rankings).

Spearman's rank correlation coefficient (used in Figs. 12 and 19 to score
how faithfully a CopyCat imitates its program across native-gate
sequences) is implemented directly, with the standard average-rank
treatment of ties.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .exceptions import ReproError

__all__ = [
    "total_variation_distance",
    "success_rate",
    "success_rate_from_counts",
    "hellinger_fidelity",
    "spearman_correlation",
    "relative_success_rates",
    "geometric_mean",
]


def _aligned(
    p: Mapping[str, float], q: Mapping[str, float]
) -> Tuple[np.ndarray, np.ndarray]:
    keys = sorted(set(p) | set(q))
    return (
        np.array([p.get(k, 0.0) for k in keys], dtype=float),
        np.array([q.get(k, 0.0) for k in keys], dtype=float),
    )


def _validated(values: np.ndarray, name: str) -> np.ndarray:
    if (values < -1e-9).any():
        raise ReproError(f"{name} has negative probabilities")
    total = values.sum()
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        raise ReproError(f"{name} sums to {total}, expected 1")
    return np.clip(values, 0.0, None)


def total_variation_distance(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """``TVD(P, Q) = (1/2) sum_x |P(x) - Q(x)|`` over the union support."""
    p_vec, q_vec = _aligned(p, q)
    p_vec = _validated(p_vec, "P")
    q_vec = _validated(q_vec, "Q")
    return float(0.5 * np.abs(p_vec - q_vec).sum())


def success_rate(p_ideal: Mapping[str, float], q_noisy: Mapping[str, float]) -> float:
    """Success-Rate ``1 - TVD`` (paper Eq. 2, normalized form).

    1.0 means the device reproduced the ideal distribution exactly; 0.0
    means the distributions are disjoint.
    """
    return 1.0 - total_variation_distance(p_ideal, q_noisy)


def success_rate_from_counts(
    p_ideal: Mapping[str, float], counts: Mapping[str, int]
) -> float:
    """Success-Rate against raw shot counts (normalizes them first)."""
    total = sum(counts.values())
    if total <= 0:
        raise ReproError("empty counts")
    q = {k: v / total for k, v in counts.items()}
    return success_rate(p_ideal, q)


def hellinger_fidelity(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """Classical (Bhattacharyya) fidelity ``(sum sqrt(p q))^2``.

    A secondary metric some related works report; included so experiment
    tables can show both without recomputation.
    """
    p_vec, q_vec = _aligned(p, q)
    p_vec = _validated(p_vec, "P")
    q_vec = _validated(q_vec, "Q")
    return float(np.sqrt(p_vec * q_vec).sum() ** 2)


def _ranks(values: Sequence[float]) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    array = np.asarray(values, dtype=float)
    order = np.argsort(array, kind="stable")
    ranks = np.empty(len(array), dtype=float)
    i = 0
    while i < len(array):
        j = i
        while j + 1 < len(array) and math.isclose(
            array[order[j + 1]], array[order[i]], abs_tol=1e-12
        ):
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman_correlation(
    x: Sequence[float], y: Sequence[float]
) -> float:
    """Spearman's rho between two equal-length samples.

    Computed as the Pearson correlation of the (tie-averaged) ranks.
    Returns 0.0 when either sample is constant (correlation undefined).
    """
    if len(x) != len(y):
        raise ReproError("samples must have equal length")
    if len(x) < 2:
        raise ReproError("need at least two observations")
    rank_x = _ranks(x)
    rank_y = _ranks(y)
    std_x = rank_x.std()
    std_y = rank_y.std()
    if std_x < 1e-12 or std_y < 1e-12:
        return 0.0
    cov = ((rank_x - rank_x.mean()) * (rank_y - rank_y.mean())).mean()
    return float(cov / (std_x * std_y))


def relative_success_rates(
    baseline: float, others: Mapping[str, float]
) -> Dict[str, float]:
    """Success rates normalized to a baseline (Fig. 18's y-axis)."""
    if baseline <= 0:
        raise ReproError("baseline success rate must be positive")
    return {name: value / baseline for name, value in others.items()}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregation for relative improvements."""
    values = list(values)
    if not values:
        raise ReproError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))
