"""Workload configuration: tenants, arrival processes, program mixes.

A :class:`WorkloadSpec` is the load harness's single input: it names
the tenants, their arrival processes (:class:`~repro.loadgen.arrivals.
ArrivalSpec`), the program mix each draws from, the base
:class:`~repro.service.RequestSpec` every request derives from, the
service shape (workers, round budget, dedup, fleet), and the
:class:`~repro.loadgen.slo.SloPolicy` bounds the run is gated on.

Specs are plain dataclasses that round-trip losslessly through
``to_dict`` / ``from_dict`` and therefore through JSON — and through
YAML when PyYAML is importable (:func:`load_workload` dispatches on the
file suffix). :meth:`WorkloadSpec.schedule` expands the spec into the
deterministic list of :class:`ScheduledRequest` submissions: same spec
+ same seed, same schedule, bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ReproError
from ..service import RequestSpec
from .arrivals import ArrivalSpec, arrival_offsets, closed_loop_think_times
from .slo import SloBound

__all__ = [
    "TenantLoad",
    "WorkloadSpec",
    "ScheduledRequest",
    "load_workload",
    "dump_workload",
]

_PROGRAM_MODES = ("cycle", "random")


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic: arrival process, program mix, policy.

    ``overrides`` patch the workload's base :class:`RequestSpec` for
    this tenant (e.g. a heavier shot budget); ``programs`` are cycled
    (or drawn seeded-at-random with ``program_mode="random"``) across
    the tenant's requests.
    """

    name: str
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    programs: Tuple[str, ...] = ("GHZ_n4",)
    program_mode: str = "cycle"
    #: Admission / fair-scheduling knobs (see TenantConfig).
    rate: Optional[float] = None
    burst: int = 8
    quantum: int = 4
    #: RequestSpec field patches applied on top of the workload base.
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("tenant load name must be non-empty")
        if not self.programs:
            raise ReproError(
                f"tenant {self.name!r} needs at least one program"
            )
        if self.program_mode not in _PROGRAM_MODES:
            raise ReproError(
                f"program_mode must be one of {_PROGRAM_MODES}"
            )
        field_names = {f.name for f in dataclasses.fields(RequestSpec)}
        for key, _ in self.overrides:
            if key not in field_names:
                raise ReproError(
                    f"tenant {self.name!r} override {key!r} is not a "
                    f"RequestSpec field"
                )

    def request_specs(self, base: RequestSpec, seed: int) -> List[RequestSpec]:
        """The tenant's request specs in submission order (seeded)."""
        patched = (
            dataclasses.replace(base, **dict(self.overrides))
            if self.overrides
            else base
        )
        total = self.arrival.total_requests
        if self.program_mode == "random":
            rng = np.random.default_rng([seed, _tenant_salt(self.name)])
            picks = rng.integers(0, len(self.programs), total)
            names = [self.programs[int(pick)] for pick in picks]
        else:
            names = [
                self.programs[index % len(self.programs)]
                for index in range(total)
            ]
        return [
            dataclasses.replace(patched, program=name) for name in names
        ]


def _tenant_salt(name: str) -> int:
    """A stable (non-PYTHONHASHSEED) integer salt for a tenant name."""
    salt = 0
    for char in name:
        salt = (salt * 131 + ord(char)) % (2**31)
    return salt


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned submission: who, when, and exactly what."""

    tenant: str
    index: int
    offset_s: float
    spec: RequestSpec
    #: Closed-loop client this request belongs to (``None`` open-loop).
    client: Optional[int] = None
    #: Closed-loop think time before this submission (0.0 open-loop).
    think_s: float = 0.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything one load run is a function of."""

    tenants: Tuple[TenantLoad, ...]
    name: str = "workload"
    seed: int = 0
    base: RequestSpec = field(
        default_factory=lambda: RequestSpec(program="GHZ_n4")
    )
    #: Service shape (mirrors AngelService's constructor).
    workers: int = 2
    round_budget_jobs: Optional[int] = None
    dedup: bool = True
    fleet: int = 0
    fleet_stagger_hours: float = 0.0
    #: Declared SLO bounds this workload is gated on.
    slo: Tuple[SloBound, ...] = ()

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ReproError("a workload needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ReproError("tenant names must be unique")
        if self.workers < 1:
            raise ReproError("workload workers must be >= 1")
        if self.fleet < 0:
            raise ReproError("workload fleet must be >= 0")

    @property
    def total_requests(self) -> int:
        return sum(
            tenant.arrival.total_requests for tenant in self.tenants
        )

    def schedule(self) -> List[ScheduledRequest]:
        """The full deterministic submission schedule, in offset order.

        Ties break on (tenant, index) so the order is total; for
        closed-loop tenants the offsets are the planned think-time
        schedule and ``think_s``/``client`` carry the live-drive data.
        """
        scheduled: List[ScheduledRequest] = []
        for tenant in self.tenants:
            specs = tenant.request_specs(self.base, self.seed)
            salt = _tenant_salt(tenant.name)
            if tenant.arrival.kind == "closed":
                thinks = closed_loop_think_times(
                    tenant.arrival, self.seed + salt
                )
                index = 0
                for client, client_thinks in enumerate(thinks):
                    offset = 0.0
                    for think in client_thinks:
                        offset += think
                        scheduled.append(
                            ScheduledRequest(
                                tenant=tenant.name,
                                index=index,
                                offset_s=offset,
                                spec=specs[index],
                                client=client,
                                think_s=think,
                            )
                        )
                        index += 1
            else:
                offsets = arrival_offsets(
                    tenant.arrival, self.seed + salt
                )
                for index, offset in enumerate(offsets):
                    scheduled.append(
                        ScheduledRequest(
                            tenant=tenant.name,
                            index=index,
                            offset_s=offset,
                            spec=specs[index],
                        )
                    )
        scheduled.sort(key=lambda s: (s.offset_s, s.tenant, s.index))
        return scheduled

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON/YAML-able dict that :meth:`from_dict` inverts."""
        return {
            "name": self.name,
            "seed": self.seed,
            "base": dataclasses.asdict(self.base),
            "service": {
                "workers": self.workers,
                "round_budget_jobs": self.round_budget_jobs,
                "dedup": self.dedup,
                "fleet": self.fleet,
                "fleet_stagger_hours": self.fleet_stagger_hours,
            },
            "tenants": [
                {
                    "name": tenant.name,
                    "arrival": dataclasses.asdict(tenant.arrival),
                    "programs": list(tenant.programs),
                    "program_mode": tenant.program_mode,
                    "rate": tenant.rate,
                    "burst": tenant.burst,
                    "quantum": tenant.quantum,
                    "overrides": {
                        key: value for key, value in tenant.overrides
                    },
                }
                for tenant in self.tenants
            ],
            "slo": [
                dataclasses.asdict(bound) for bound in self.slo
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        service = dict(data.get("service", {}))
        tenants = []
        for raw in data.get("tenants", []):
            raw = dict(raw)
            overrides = raw.get("overrides", {}) or {}
            tenants.append(
                TenantLoad(
                    name=raw["name"],
                    arrival=ArrivalSpec(**dict(raw.get("arrival", {}))),
                    programs=tuple(raw.get("programs", ("GHZ_n4",))),
                    program_mode=raw.get("program_mode", "cycle"),
                    rate=raw.get("rate"),
                    burst=raw.get("burst", 8),
                    quantum=raw.get("quantum", 4),
                    overrides=tuple(sorted(overrides.items())),
                )
            )
        return cls(
            tenants=tuple(tenants),
            name=data.get("name", "workload"),
            seed=data.get("seed", 0),
            base=RequestSpec(**dict(data.get("base", {"program": "GHZ_n4"}))),
            workers=service.get("workers", 2),
            round_budget_jobs=service.get("round_budget_jobs"),
            dedup=service.get("dedup", True),
            fleet=service.get("fleet", 0),
            fleet_stagger_hours=service.get("fleet_stagger_hours", 0.0),
            slo=tuple(
                SloBound(**dict(raw)) for raw in data.get("slo", [])
            ),
        )


def _yaml_module():
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment-dependent
        return None
    return yaml


def load_workload(path: Union[str, Path]) -> WorkloadSpec:
    """Read a workload from a ``.json`` / ``.yaml`` / ``.yml`` file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read workload {path}: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        yaml = _yaml_module()
        if yaml is None:
            raise ReproError(
                f"{path.name}: YAML workloads need PyYAML installed; "
                f"use a .json workload instead"
            )
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ReproError(f"{path.name}: workload must be a mapping")
    return WorkloadSpec.from_dict(data)


def dump_workload(
    workload: WorkloadSpec, path: Union[str, Path]
) -> None:
    """Write a workload to ``.json`` / ``.yaml`` (suffix dispatch)."""
    path = Path(path)
    data = workload.to_dict()
    if path.suffix in (".yaml", ".yml"):
        yaml = _yaml_module()
        if yaml is None:
            raise ReproError(
                f"{path.name}: YAML workloads need PyYAML installed; "
                f"use a .json workload instead"
            )
        path.write_text(yaml.safe_dump(data, sort_keys=False))
    else:
        path.write_text(json.dumps(data, indent=2) + "\n")
