"""repro.loadgen — load generation and SLO analysis for the service.

The CORTEX-style harness over :class:`~repro.service.AngelService`: a
:class:`WorkloadSpec` (YAML/JSON or dataclass) describes tenants, their
seeded arrival processes (open-loop Poisson, closed-loop with think
time, burst trains, diurnal ramps), program mixes, and the declared
:class:`SloBound` budget; a :class:`LoadGenerator` drives the service
on that schedule while collecting every span; an :class:`SloAnalyzer`
reduces the spans to p50/p95/p99 latency (host and simulated-device
clocks), queue wait, jitter, throughput, rejection, and dedup/
coalescing metrics; an :class:`SloPolicy` turns the declared bounds
into a pass/fail :class:`SloVerdict` with per-metric margins.

Determinism is the design center: same workload + seed means the same
request schedule, per-request outcomes bit-identical to
:func:`~repro.service.run_standalone`, and reproducible simulated-time
percentiles — which is what lets ``benchmarks/bench_slo.py`` and the CI
``slo-gate`` job fail on tail-latency regressions instead of a human
reading traces. Quickstart::

    from repro.loadgen import load_workload, LoadGenerator

    workload = load_workload("examples/workload_burst.yaml")
    report = LoadGenerator(workload).run()
    print(report.verdict().to_text())

Or from the CLI: ``python -m repro load --workload
examples/workload_burst.yaml --check``.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    arrival_offsets,
    burst_offsets,
    closed_loop_think_times,
    diurnal_offsets,
    poisson_offsets,
)
from .slo import SloAnalyzer, SloBound, SloPolicy, SloVerdict
from .workload import (
    ScheduledRequest,
    TenantLoad,
    WorkloadSpec,
    dump_workload,
    load_workload,
)

# The generator pulls in the service layer (which imports the
# experiments context); import it last to keep the package acyclic.
from .generator import LoadGenerator, LoadReport  # noqa: E402

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "arrival_offsets",
    "poisson_offsets",
    "burst_offsets",
    "diurnal_offsets",
    "closed_loop_think_times",
    "TenantLoad",
    "WorkloadSpec",
    "ScheduledRequest",
    "load_workload",
    "dump_workload",
    "SloAnalyzer",
    "SloBound",
    "SloPolicy",
    "SloVerdict",
    "LoadGenerator",
    "LoadReport",
]
