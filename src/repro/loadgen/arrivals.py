"""Seeded arrival processes for the load harness.

An :class:`ArrivalSpec` names one arrival process and its parameters;
:func:`arrival_offsets` expands it into the deterministic list of
submission offsets (host seconds from the start of the run) that the
:class:`~repro.loadgen.generator.LoadGenerator` drives. Four kinds:

* ``poisson`` — open-loop Poisson: i.i.d. exponential inter-arrival
  gaps at ``rate_rps``; the classic memoryless client population.
* ``burst`` — deterministic burst trains: ``bursts`` groups of
  ``burst_size`` back-to-back submissions ``spacing_s`` apart, with
  ``gap_s`` between group starts (optionally jittered).
* ``diurnal`` — a non-homogeneous Poisson ramp whose instantaneous rate
  swings sinusoidally between ``base_rps`` and ``peak_rps`` over
  ``period_s`` (a compressed day), sampled by thinning.
* ``closed`` — closed-loop clients: ``clients`` concurrent clients each
  issue ``requests_per_client`` requests *sequentially*, waiting for
  the previous response plus an exponential think time (mean
  ``think_s``) before the next. Closed-loop offsets depend on service
  latency, so :func:`arrival_offsets` returns the *planned* offsets
  (think times alone) and :func:`closed_loop_think_times` exposes the
  per-client draws the generator actually sleeps on.

Everything is a pure function of (spec, seed): the same pair always
produces the same schedule, bit for bit — that determinism is what lets
the SLO gate compare percentiles across CI runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ReproError

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "arrival_offsets",
    "poisson_offsets",
    "burst_offsets",
    "diurnal_offsets",
    "closed_loop_think_times",
]

ARRIVAL_KINDS = ("poisson", "burst", "diurnal", "closed")


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process, fully parameterized and serializable.

    Only the fields relevant to ``kind`` are read; the rest keep their
    defaults so every spec round-trips through a flat dict (the config
    format) without per-kind schemas.
    """

    kind: str = "poisson"
    #: Open-loop kinds: total requests to generate.
    requests: int = 8
    #: ``poisson``: mean arrival rate, requests per second.
    rate_rps: float = 4.0
    #: ``burst``: groups, group size, intra-group spacing, group cadence.
    bursts: int = 2
    burst_size: int = 4
    spacing_s: float = 0.01
    gap_s: float = 1.0
    #: ``burst``: uniform per-request jitter amplitude (0 = exact train).
    jitter_s: float = 0.0
    #: ``diurnal``: the rate swings between base and peak over a period.
    base_rps: float = 1.0
    peak_rps: float = 8.0
    period_s: float = 60.0
    #: ``closed``: concurrent clients, requests each, mean think time.
    clients: int = 2
    requests_per_client: int = 4
    think_s: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ReproError(
                f"unknown arrival kind {self.kind!r}; "
                f"expected one of {ARRIVAL_KINDS}"
            )
        if self.kind in ("poisson", "diurnal") and self.requests < 1:
            raise ReproError("arrival requests must be >= 1")
        if self.kind == "poisson" and self.rate_rps <= 0:
            raise ReproError("poisson rate_rps must be positive")
        if self.kind == "burst":
            if self.bursts < 1 or self.burst_size < 1:
                raise ReproError("bursts and burst_size must be >= 1")
            if self.spacing_s < 0 or self.gap_s < 0 or self.jitter_s < 0:
                raise ReproError("burst timings must be non-negative")
        if self.kind == "diurnal":
            if self.base_rps <= 0 or self.peak_rps < self.base_rps:
                raise ReproError(
                    "diurnal needs 0 < base_rps <= peak_rps"
                )
            if self.period_s <= 0:
                raise ReproError("diurnal period_s must be positive")
        if self.kind == "closed":
            if self.clients < 1 or self.requests_per_client < 1:
                raise ReproError(
                    "closed loop needs clients and requests_per_client "
                    ">= 1"
                )
            if self.think_s < 0:
                raise ReproError("think_s must be non-negative")

    @property
    def total_requests(self) -> int:
        """Requests this process will submit over a full run."""
        if self.kind == "burst":
            return self.bursts * self.burst_size
        if self.kind == "closed":
            return self.clients * self.requests_per_client
        return self.requests


def poisson_offsets(spec: ArrivalSpec, seed: int) -> List[float]:
    """Open-loop Poisson arrivals: cumulative exponential gaps."""
    rng = np.random.default_rng([seed, 0x501])
    gaps = rng.exponential(1.0 / spec.rate_rps, spec.requests)
    return [float(offset) for offset in np.cumsum(gaps)]


def burst_offsets(spec: ArrivalSpec, seed: int) -> List[float]:
    """Burst trains: evenly spaced groups of back-to-back arrivals."""
    rng = np.random.default_rng([seed, 0xB5]) if spec.jitter_s else None
    offsets = []
    for burst in range(spec.bursts):
        start = burst * spec.gap_s
        for position in range(spec.burst_size):
            offset = start + position * spec.spacing_s
            if rng is not None:
                offset += float(rng.uniform(0.0, spec.jitter_s))
            offsets.append(offset)
    return sorted(offsets)


def diurnal_offsets(spec: ArrivalSpec, seed: int) -> List[float]:
    """Sinusoidal-rate Poisson arrivals via Lewis–Shedler thinning.

    The instantaneous rate is ``base + (peak - base) * (1 - cos(2*pi*t
    / period)) / 2`` — a trough at t=0 ramping to a peak mid-period —
    and candidate arrivals at the peak rate are kept with probability
    ``rate(t) / peak``.
    """
    rng = np.random.default_rng([seed, 0xD1])
    swing = spec.peak_rps - spec.base_rps
    offsets: List[float] = []
    t = 0.0
    while len(offsets) < spec.requests:
        t += float(rng.exponential(1.0 / spec.peak_rps))
        rate = spec.base_rps + swing * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * t / spec.period_s)
        )
        if rng.uniform() <= rate / spec.peak_rps:
            offsets.append(t)
    return offsets


def closed_loop_think_times(
    spec: ArrivalSpec, seed: int
) -> List[List[float]]:
    """Per-client think-time draws (seconds), ``clients`` lists of
    ``requests_per_client`` entries. The first entry is the delay before
    the client's *first* request, so staggered client start-up is part
    of the seeded schedule."""
    times = []
    for client in range(spec.clients):
        rng = np.random.default_rng([seed, 0xC1, client])
        if spec.think_s == 0.0:
            times.append([0.0] * spec.requests_per_client)
        else:
            times.append(
                [
                    float(value)
                    for value in rng.exponential(
                        spec.think_s, spec.requests_per_client
                    )
                ]
            )
    return times


def arrival_offsets(spec: ArrivalSpec, seed: int) -> List[float]:
    """The deterministic submission offsets for one arrival process.

    For ``closed`` this is the *planned* schedule — cumulative think
    times per client, interleaved in offset order — since real
    closed-loop offsets additionally wait on each response.
    """
    if spec.kind == "poisson":
        return poisson_offsets(spec, seed)
    if spec.kind == "burst":
        return burst_offsets(spec, seed)
    if spec.kind == "diurnal":
        return diurnal_offsets(spec, seed)
    offsets = []
    for think_times in closed_loop_think_times(spec, seed):
        offsets.extend(np.cumsum(think_times))
    return sorted(float(offset) for offset in offsets)
