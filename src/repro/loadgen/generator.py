"""Drive an :class:`~repro.service.AngelService` from a workload spec.

:class:`LoadGenerator` expands a :class:`~repro.loadgen.workload.
WorkloadSpec` into its deterministic submission schedule and replays it
against a service built to the workload's shape (workers, round budget,
dedup, fleet), with an observability pair installed for the duration so
every ``svc.request`` / ``svc.coalesce`` / ``search`` / ``exec.batch``
span lands in the report.

Two drive modes:

* ``pacing="none"`` (default) — submit as fast as the arrival *order*
  allows: open-loop requests go out back-to-back in offset order,
  closed-loop clients still wait for each response but skip think-time
  sleeps. This is the CI mode: wall-clock compressed, outcomes and
  simulated-time percentiles unchanged (request isolation means timing
  never leaks into results).
* ``pacing="wall"`` — honor the schedule on the host clock, offsets
  divided by ``speedup``; the mode for latency realism on a live box.

Every completed request's :class:`~repro.service.CompileOutcome` is
bit-identical to ``run_standalone(spec)`` (or the replica-adjusted spec
in fleet mode) — the service equivalence contract, re-pinned under load
by ``tests/test_equivalence_matrix.py``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..fleet import FleetSpec
from ..obs import MetricsRegistry, Tracer
from ..obs import runtime as obs
from ..service import (
    AdmissionError,
    AngelService,
    CompileOutcome,
    TenantConfig,
)
from .slo import SloAnalyzer, SloPolicy, SloVerdict
from .workload import ScheduledRequest, WorkloadSpec

__all__ = ["LoadGenerator", "LoadReport"]

#: A request slot in the report: the outcome, the failure, or the
#: admission bounce (an AdmissionError instance).
Slot = Union[CompileOutcome, BaseException]


@dataclass
class LoadReport:
    """Everything one load run produced."""

    workload: WorkloadSpec
    schedule: List[ScheduledRequest]
    #: Per tenant, one slot per scheduled request, in request order.
    outcomes: Dict[str, List[Slot]]
    spans: List[Dict[str, Any]]
    wall_time_s: float
    rejected: int
    tenant_report: Dict[str, Dict[str, object]]
    store_stats: List[Dict[str, object]] = field(default_factory=list)
    fleet_report: Optional[Dict[str, object]] = None

    @property
    def completed(self) -> List[CompileOutcome]:
        return [
            slot
            for slots in self.outcomes.values()
            for slot in slots
            if isinstance(slot, CompileOutcome)
        ]

    @property
    def failed(self) -> int:
        """Requests that ran and failed (admission bounces excluded)."""
        return sum(
            1
            for slots in self.outcomes.values()
            for slot in slots
            if isinstance(slot, BaseException)
            and not isinstance(slot, AdmissionError)
        )

    def analyze(self) -> Dict[str, Any]:
        """SLO metrics via :class:`SloAnalyzer` over this run's spans."""
        return SloAnalyzer(self.spans, self.wall_time_s).analyze()

    def verdict(self) -> SloVerdict:
        """The workload's declared bounds evaluated on this run."""
        return SloPolicy(self.workload.slo).evaluate(self.analyze())


class LoadGenerator:
    """Expand a workload into a schedule and drive the service with it."""

    def __init__(self, workload: WorkloadSpec) -> None:
        self.workload = workload
        self._schedule: Optional[List[ScheduledRequest]] = None

    def schedule(self) -> List[ScheduledRequest]:
        """The deterministic submission schedule (cached)."""
        if self._schedule is None:
            self._schedule = self.workload.schedule()
        return self._schedule

    # ------------------------------------------------------------------
    def _build_service(self) -> AngelService:
        workload = self.workload
        fleet = (
            FleetSpec.create(
                workload.fleet,
                stagger_hours=workload.fleet_stagger_hours,
            )
            if workload.fleet
            else None
        )
        return AngelService(
            num_workers=workload.workers,
            round_budget_jobs=workload.round_budget_jobs,
            dedup=workload.dedup,
            tenants=tuple(
                TenantConfig(
                    name=tenant.name,
                    rate=tenant.rate,
                    burst=tenant.burst,
                    quantum=tenant.quantum,
                )
                for tenant in workload.tenants
            ),
            fleet=fleet,
        )

    def run(
        self,
        pacing: str = "none",
        speedup: float = 1.0,
        trace_path: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> LoadReport:
        """Drive the full workload; block until every request resolves.

        Args:
            pacing: ``"none"`` (compressed, CI mode) or ``"wall"``
                (host-clock schedule).
            speedup: With ``pacing="wall"``, divide every offset and
                think time by this factor.
            trace_path: Stream the run's spans to a JSONL file too.
            timeout_s: Per-request result timeout (safety net only).
        """
        if pacing not in ("none", "wall"):
            raise ValueError(f"unknown pacing {pacing!r}")
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        schedule = self.schedule()
        open_loop = [item for item in schedule if item.client is None]
        closed: Dict[tuple, List[ScheduledRequest]] = {}
        for item in schedule:
            if item.client is not None:
                closed.setdefault((item.tenant, item.client), []).append(
                    item
                )
        for items in closed.values():
            items.sort(key=lambda item: item.index)

        slots: Dict[tuple, Slot] = {}
        slots_lock = threading.Lock()
        rejected = [0]

        tracer = Tracer(sink=trace_path)
        registry = MetricsRegistry()
        previous = obs.install(tracer, registry)
        service = self._build_service()
        start = time.perf_counter()
        origin = time.monotonic()

        def record(item: ScheduledRequest, slot: Slot) -> None:
            with slots_lock:
                slots[(item.tenant, item.index)] = slot
                if isinstance(slot, AdmissionError):
                    rejected[0] += 1

        def pace_until(offset_s: float) -> None:
            if pacing != "wall":
                return
            delay = offset_s / speedup - (time.monotonic() - origin)
            if delay > 0:
                time.sleep(delay)

        def drive_client(items: List[ScheduledRequest]) -> None:
            # One closed-loop client: wait for each response (plus the
            # scheduled think time under wall pacing) before the next.
            for item in items:
                if pacing == "wall" and item.think_s > 0:
                    time.sleep(item.think_s / speedup)
                try:
                    handle = service.submit(item.tenant, item.spec)
                except AdmissionError as exc:
                    record(item, exc)
                    continue
                try:
                    record(item, handle.result(timeout=timeout_s))
                except BaseException as exc:  # noqa: BLE001 - recorded
                    record(item, exc)

        try:
            threads = [
                threading.Thread(
                    target=drive_client,
                    args=(items,),
                    name=f"loadgen-{tenant}-c{client}",
                    daemon=True,
                )
                for (tenant, client), items in sorted(closed.items())
            ]
            for thread in threads:
                thread.start()
            handles = []
            for item in open_loop:
                pace_until(item.offset_s)
                try:
                    handles.append(
                        (item, service.submit(item.tenant, item.spec))
                    )
                except AdmissionError as exc:
                    record(item, exc)
            for thread in threads:
                thread.join()
            service.drain(timeout_s)
            for item, handle in handles:
                try:
                    record(item, handle.result(timeout=timeout_s))
                except BaseException as exc:  # noqa: BLE001 - recorded
                    record(item, exc)
            wall_time_s = time.perf_counter() - start
            tenant_report = service.tenant_report()
            store_stats = service.store_stats()
            fleet_report = service.fleet_report()
        finally:
            try:
                service.close()
            finally:
                obs.uninstall(previous)
                tracer.close()

        outcomes: Dict[str, List[Slot]] = {}
        for item in sorted(
            schedule, key=lambda entry: (entry.tenant, entry.index)
        ):
            outcomes.setdefault(item.tenant, []).append(
                slots[(item.tenant, item.index)]
            )
        return LoadReport(
            workload=self.workload,
            schedule=schedule,
            outcomes=outcomes,
            spans=[span.to_dict() for span in tracer.spans],
            wall_time_s=wall_time_s,
            rejected=rejected[0],
            tenant_report=tenant_report,
            store_stats=store_stats,
            fleet_report=fleet_report,
        )
