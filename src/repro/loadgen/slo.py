"""SLO extraction and gating over load-run traces.

:class:`SloAnalyzer` reduces the spans a load run produced — every
``svc.request`` summary, every ``svc.coalesce`` window, the ``search``
and ``exec.batch`` regions underneath — to one nested metrics dict:
p50/p95/p99 compile latency on *both* clocks (host wall seconds and
simulated device microseconds), queue wait, jitter, throughput,
admission-rejection rate, dedup and coalescing ratios, and the same
percentiles per tenant and per fleet replica. Percentiles use the
nearest-rank order statistic (:func:`repro.obs.percentile`), so on a
deterministic workload the simulated-time numbers are bit-reproducible
across runs and machines.

:class:`SloPolicy` is the gate: a list of :class:`SloBound` declarations
(``metric`` dotted path, ``max_value`` / ``min_value``) evaluated
against an analysis dict into an :class:`SloVerdict` with a per-metric
margin — how far inside (or outside) the bound the measured value
landed. ``benchmarks/bench_slo.py`` and ``repro load --check`` turn a
failing verdict into a nonzero exit, which is what the CI ``slo-gate``
job keys on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..exceptions import ReproError
from ..obs import attr_values, filter_spans, group_by_attr, percentile

__all__ = ["SloAnalyzer", "SloBound", "SloPolicy", "SloVerdict"]

_QS = (50.0, 95.0, 99.0)


def _stats_block(values: Sequence[float], suffix: str) -> Dict[str, float]:
    """p50/p95/p99 + mean + jitter (population stdev) for one series."""
    block = {
        f"p{q:g}_{suffix}": percentile(values, q) for q in _QS
    }
    if values:
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
    else:
        mean = variance = 0.0
    block[f"mean_{suffix}"] = mean
    block[f"jitter_{suffix}"] = math.sqrt(variance)
    return block


class SloAnalyzer:
    """Pure post-processing: spans in, SLO metrics dict out.

    Args:
        spans: The load run's finished spans (:class:`~repro.obs.Span`
            objects or their dicts — e.g. ``read_trace`` output).
        wall_time_s: The run's wall-clock duration, the denominator for
            throughput. ``None`` falls back to the latest ``svc.
            request`` end time observed in the spans.
    """

    def __init__(
        self,
        spans: Iterable[Any],
        wall_time_s: Optional[float] = None,
    ) -> None:
        self.spans = list(spans)
        self.requests = filter_spans(self.spans, "svc.request")
        self.rejects = filter_spans(self.spans, "svc.reject")
        self.coalesces = filter_spans(self.spans, "svc.coalesce")
        if wall_time_s is None:
            wall_time_s = max(
                (
                    span.get("start_wall_s", 0.0)
                    + span.get("wall_time_s", 0.0)
                    for span in self.requests
                ),
                default=0.0,
            )
        self.wall_time_s = wall_time_s

    # ------------------------------------------------------------------
    def _request_block(
        self, requests: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """The full metric block for one group of svc.request spans."""
        completed = [
            span
            for span in requests
            if not span.get("attributes", {}).get("failed")
        ]
        probes = sum(attr_values(completed, "probes"))
        dedup_hits = sum(attr_values(completed, "dedup_hits"))
        return {
            "requests": len(requests),
            "completed": len(completed),
            "failed": len(requests) - len(completed),
            "latency": {
                "host": _stats_block(
                    attr_values(completed, "latency_s"), "s"
                ),
                "device": _stats_block(
                    attr_values(completed, "device_time_us"), "us"
                ),
            },
            "queue_wait": _stats_block(
                attr_values(completed, "queue_wait_s"), "s"
            ),
            "service_time": _stats_block(
                attr_values(completed, "service_time_s"), "s"
            ),
            "dedup": {
                "probes": probes,
                "hits": dedup_hits,
                "ratio": dedup_hits / probes if probes else 0.0,
            },
        }

    def analyze(self) -> Dict[str, Any]:
        """The one nested dict every SLO bound is a dotted path into."""
        report = self._request_block(self.requests)
        completed = report["completed"]
        submitted = len(self.requests) + len(self.rejects)
        report["rejected"] = len(self.rejects)
        report["rejection_rate"] = (
            len(self.rejects) / submitted if submitted else 0.0
        )
        report["wall_time_s"] = self.wall_time_s
        report["throughput_rps"] = (
            completed / self.wall_time_s if self.wall_time_s else 0.0
        )
        rounds = len(self.coalesces)
        units = sum(attr_values(self.coalesces, "units"))
        jobs = sum(attr_values(self.coalesces, "jobs"))
        report["coalescing"] = {
            "rounds": rounds,
            "units": units,
            "jobs": jobs,
            "mean_units_per_round": units / rounds if rounds else 0.0,
        }
        for name, key in (("search", "search"), ("exec.batch", "exec_batch")):
            regions = filter_spans(self.spans, name)
            report[key] = {
                "spans": len(regions),
                "wall": _stats_block(
                    [span.get("wall_time_s", 0.0) for span in regions],
                    "s",
                ),
            }
        report["per_tenant"] = {
            str(tenant): self._request_block(spans)
            for tenant, spans in sorted(
                group_by_attr(self.requests, "tenant").items(),
                key=lambda item: str(item[0]),
            )
        }
        report["per_replica"] = {
            str(replica): self._request_block(spans)
            for replica, spans in sorted(
                group_by_attr(self.requests, "replica").items(),
                key=lambda item: str(item[0]),
            )
        }
        return report


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SloBound:
    """One declared bound on one metric.

    ``metric`` is a dotted path into the analysis dict (e.g.
    ``latency.host.p95_s`` or ``per_tenant.alice.queue_wait.p99_s``);
    at least one of ``max_value`` / ``min_value`` must be set.
    """

    metric: str
    max_value: Optional[float] = None
    min_value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_value is None and self.min_value is None:
            raise ReproError(
                f"SLO bound on {self.metric!r} declares no "
                f"max_value/min_value"
            )


@dataclass
class _BoundResult:
    """One bound's evaluation: measured value, margin, verdict."""

    bound: SloBound
    value: Optional[float]
    ok: bool
    #: Distance inside the bound (negative = violated by that much).
    margin: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        limits = {}
        if self.bound.max_value is not None:
            limits["max"] = self.bound.max_value
        if self.bound.min_value is not None:
            limits["min"] = self.bound.min_value
        return {
            "metric": self.bound.metric,
            "value": self.value,
            "ok": self.ok,
            "margin": self.margin,
            **limits,
        }


@dataclass
class SloVerdict:
    """Every bound's result plus the overall pass/fail."""

    results: List[_BoundResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violations(self) -> List[_BoundResult]:
        return [result for result in self.results if not result.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "bounds": [result.to_dict() for result in self.results],
        }

    def to_text(self) -> str:
        """The verdict table ``repro load`` prints."""
        lines = [
            f"{'metric':44s} {'value':>12s} {'bound':>16s} "
            f"{'margin':>10s}  verdict"
        ]
        for result in self.results:
            bound = result.bound
            limits = []
            if bound.max_value is not None:
                limits.append(f"<= {bound.max_value:g}")
            if bound.min_value is not None:
                limits.append(f">= {bound.min_value:g}")
            value = (
                f"{result.value:.6g}" if result.value is not None
                else "missing"
            )
            margin = (
                f"{result.margin:+.4g}" if result.margin is not None
                else "-"
            )
            verdict = "ok" if result.ok else "VIOLATED"
            lines.append(
                f"{bound.metric:44s} {value:>12s} "
                f"{' '.join(limits):>16s} {margin:>10s}  {verdict}"
            )
        lines.append(
            "SLO: PASS" if self.passed
            else f"SLO: FAIL ({len(self.violations)} violated)"
        )
        return "\n".join(lines)


def _dig(analysis: Dict[str, Any], path: str) -> Optional[float]:
    value: Any = analysis
    for key in path.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


@dataclass(frozen=True)
class SloPolicy:
    """A set of bounds evaluated together against one analysis dict."""

    bounds: Sequence[SloBound] = ()

    def evaluate(self, analysis: Dict[str, Any]) -> SloVerdict:
        """Check every bound; missing metrics fail their bound.

        The margin is the distance to the *nearest violated-first*
        limit: for a max bound, ``max - value`` (positive = headroom);
        for a min bound, ``value - min``; with both, the smaller of the
        two. A missing metric is a failure, not a skip — a typo'd
        dotted path must not silently pass CI.
        """
        results = []
        for bound in self.bounds:
            value = _dig(analysis, bound.metric)
            if value is None:
                results.append(
                    _BoundResult(bound=bound, value=None, ok=False)
                )
                continue
            margins = []
            if bound.max_value is not None:
                margins.append(bound.max_value - value)
            if bound.min_value is not None:
                margins.append(value - bound.min_value)
            margin = min(margins)
            results.append(
                _BoundResult(
                    bound=bound,
                    value=value,
                    ok=margin >= 0.0,
                    margin=margin,
                )
            )
        return SloVerdict(results=results)
