"""Stacking ANGEL with Clifford Data Regression (paper §VII-B).

The paper positions ANGEL (better circuits before execution) as
complementary to CDR (post-processing after execution) and conjectures
the combination compounds. This example measures all four corners of
that 2x2 on a VQE ansatz:

                 raw            CDR-mitigated
  baseline    |err_bb|           |err_bc|
  ANGEL       |err_ab|           |err_ac|   <- conjecture: smallest

Run:  python examples/error_mitigation_stack.py
"""

from repro.compiler import transpile
from repro.core import Angel, AngelConfig, CliffordDataRegression
from repro.core.cdr import parity_expectation
from repro.experiments import ExperimentContext
from repro.programs import vqe_n4


def main() -> None:
    context = ExperimentContext.create(seed=23, drift_hours=30.0)
    device, calibration = context.device, context.calibration

    compiled = transpile(vqe_n4(), device, calibration)
    ideal = parity_expectation(compiled.ideal_distribution())
    print(f"program: VQE_n4; ideal <Z..Z> = {ideal:+.4f}\n")

    angel = Angel(device, calibration, AngelConfig(probe_shots=2048, seed=9))
    result = angel.select(compiled)
    configurations = (
        ("baseline ", result.reference_sequence),
        ("ANGEL    ", result.sequence),
    )
    print(f"{'nativization':12s} {'sequence':22s} "
          f"{'raw err':>8s} {'CDR err':>8s}")
    errors = {}
    for label, sequence in configurations:
        cdr = CliffordDataRegression(
            device, num_training=16, shots=2048, seed=hash(label) % 2**31
        )
        raw, mitigated, fit = cdr.mitigated_expectation(
            compiled, sequence, target_shots=8192
        )
        errors[label.strip()] = (abs(raw - ideal), abs(mitigated - ideal))
        print(
            f"{label:12s} {sequence.label():22s} "
            f"{abs(raw - ideal):8.4f} {abs(mitigated - ideal):8.4f}"
            f"   (fit: {fit.slope:.2f}x{fit.intercept:+.3f})"
        )
    best = min(errors.items(), key=lambda kv: kv[1][1])
    print(f"\nBest mitigated error this run: {best[1][1]:.4f} under"
          f" {best[0]} nativization.")
    print("Caveats worth seeing in the numbers: ANGEL optimizes the "
          "success rate (TVD),\nnot this parity observable, and CDR's "
          "linear fit is shot-noise limited — so\nindividual runs vary. "
          "The aggregate trend (bench_extension_cdr.py) is what\n"
          "supports the paper's composition conjecture.")


if __name__ == "__main__":
    main()
