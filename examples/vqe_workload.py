"""Domain scenario: a VQE workload with a non-Clifford-heavy circuit.

VQE ansatz circuits are the paper's motivating NISQ workload: rotation
layers (non-Clifford) interleaved with CNOT entanglers. This example
shows the parts of ANGEL that matter for such programs:

* the CopyCat keeps the *initial* RY layer verbatim (within the
  non-Clifford budget) and replaces the later rotations with their
  operator-norm-nearest Cliffords (never H-like ones);
* the search trace records every probe, so the run is auditable;
* the learned sequence transfers from the CopyCat to the real ansatz.

Run:  python examples/vqe_workload.py
"""

from repro.compiler import transpile
from repro.core import Angel, AngelConfig
from repro.exec import Job
from repro.experiments import ExperimentContext
from repro.metrics import success_rate_from_counts
from repro.programs import vqe_n4


def main() -> None:
    context = ExperimentContext.create(seed=47, drift_hours=30.0)
    device, calibration = context.device, context.calibration

    compiled = transpile(vqe_n4(), device, calibration)
    angel = Angel(device, calibration, AngelConfig(probe_shots=2048, seed=3))
    result = angel.select(compiled)

    copycat = result.copycat
    print("CopyCat construction")
    print(f"  retained non-Clifford gates (initial layer): "
          f"{len(copycat.retained_non_clifford)}")
    print(f"  Clifford replacements performed: {len(copycat.replaced)}")
    for index, original, replacement in copycat.replaced[:4]:
        spelled = ".".join(g.name for g in replacement) or "id"
        print(f"    instr {index}: {original.name}{original.params} -> {spelled}")
    print(f"  total operator-norm replacement distance: "
          f"{copycat.total_replacement_distance:.3f}")

    print("\nsearch trace (probe -> SR)")
    for probe in result.trace.probes:
        marker = "*" if probe.accepted else " "
        where = f"link {probe.link}" if probe.link else "reference"
        print(f"  {marker} {probe.sequence.label():30s} {where:16s} "
              f"SR={probe.success_rate:.3f}")
    print(f"  reference updated {result.trace.num_updates} time(s)")

    ideal = compiled.ideal_distribution()
    shots = 4096
    executor = context.executor
    baseline_sr = success_rate_from_counts(
        ideal,
        executor.submit(
            Job(
                compiled.nativized(result.reference_sequence, name_suffix="_b"),
                shots,
                tag="final",
            )
        ).counts,
    )
    angel_sr = success_rate_from_counts(
        ideal,
        executor.submit(
            Job(angel.nativize(compiled, result), shots, tag="final")
        ).counts,
    )
    print(f"\nVQE ansatz SR: baseline {baseline_sr:.3f} -> ANGEL "
          f"{angel_sr:.3f} ({angel_sr / baseline_sr:.2f}x)")


if __name__ == "__main__":
    main()
