"""Drift resilience: how long does a learned sequence stay good?

The paper's Section VI-E shows device drift eventually erodes any
learned native gate sequence. This example quantifies a practical
re-learning policy: learn once with ANGEL, keep executing the program
every hour, and re-learn whenever the measured SR drops more than a
threshold below the level at learning time.

Run:  python examples/drift_resilience.py
"""

from repro.compiler import transpile
from repro.core import Angel, AngelConfig
from repro.exec import Job
from repro.experiments import ExperimentContext
from repro.metrics import success_rate_from_counts
from repro.programs import ghz_n4

HOUR_US = 3.6e9
RELEARN_DROP = 0.10  # re-learn when SR falls 10 points below reference
HOURS = 12
SHOTS = 2048


def main() -> None:
    context = ExperimentContext.create(seed=31, drift_hours=30.0)
    device, calibration = context.device, context.calibration
    compiled = transpile(ghz_n4(), device, calibration)
    ideal = compiled.ideal_distribution()

    def learn(tag: str):
        angel = Angel(
            device, calibration, AngelConfig(probe_shots=1024, seed=hash(tag) % 2**31)
        )
        result = angel.select(compiled)
        circuit = compiled.nativized(result.sequence, name_suffix=f"_{tag}")
        counts = context.executor.submit(Job(circuit, SHOTS, tag="final")).counts
        sr = success_rate_from_counts(ideal, counts)
        return result.sequence, sr

    sequence, reference_sr = learn("t0")
    print(f"hour  0: learned {sequence.label()} SR={reference_sr:.3f}")

    relearn_count = 0
    for hour in range(1, HOURS + 1):
        device.advance_time(HOUR_US)
        context.service.maybe_recalibrate()
        circuit = compiled.nativized(sequence, name_suffix=f"_h{hour}")
        counts = context.executor.submit(Job(circuit, SHOTS, tag="monitor")).counts
        sr = success_rate_from_counts(ideal, counts)
        status = ""
        if sr < reference_sr - RELEARN_DROP:
            sequence, reference_sr = learn(f"t{hour}")
            relearn_count += 1
            status = f"  -> re-learned {sequence.label()} (SR {reference_sr:.3f})"
        print(f"hour {hour:2d}: SR={sr:.3f}{status}")

    print(f"\nre-learned {relearn_count} time(s) in {HOURS} hours; each "
          f"re-learning costs only 1+2L probe circuits.")


if __name__ == "__main__":
    main()
