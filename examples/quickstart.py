"""Quickstart: compile a program with ANGEL and measure the improvement.

This walks the full pipeline of the paper's Fig. 10 on a simulated
Rigetti Aspen-11:

1. build the device and let a vendor-style calibration service age
   (XY/CZ refresh every 4h, CPHASE every 24h — so its records are stale);
2. transpile a GHZ program (map -> route -> schedule);
3. let ANGEL build a CopyCat and learn the best native gate sequence
   with 1 + 2L probe circuits;
4. execute the program under the noise-adaptive baseline sequence and
   under ANGEL's learned sequence, and compare success rates.

Run:  python examples/quickstart.py
"""

from repro.compiler import transpile
from repro.core import Angel, AngelConfig
from repro.exec import Job
from repro.experiments import ExperimentContext
from repro.metrics import success_rate_from_counts
from repro.programs import ghz_n4


def main() -> None:
    # A simulated Aspen-11 whose last full calibration is 30h old.
    context = ExperimentContext.create(seed=23, drift_hours=30.0)
    device, calibration = context.device, context.calibration
    print(f"device: {device.name} ({device.topology.num_qubits} qubits, "
          f"{device.topology.num_links} links)")
    print(f"CPHASE calibration staleness: "
          f"{context.service.staleness_us('cphase') / 3.6e9:.1f} hours")

    # Compile: mapping, routing, scheduling. Native gates not chosen yet.
    program = ghz_n4()
    compiled = transpile(program, device, calibration)
    print(f"\nprogram: {program.name} -> {compiled.num_cnot_sites} CNOT "
          f"sites on links {compiled.links_used()}")

    # ANGEL: CopyCat + localized search on the device.
    angel = Angel(device, calibration, AngelConfig(probe_shots=1024, seed=7))
    result = angel.select(compiled)
    print(f"\nCopyCat pure Clifford: {result.copycat.is_pure_clifford}")
    print(f"probes executed: {result.copycats_executed} "
          f"(1 + 2L = {angel.expected_probe_count(compiled)})")
    print(f"reference sequence (noise-adaptive): "
          f"{result.reference_sequence.label()}")
    print(f"learned sequence:                    {result.sequence.label()}")

    # Final comparison on the actual program, via the execution service.
    ideal = compiled.ideal_distribution()
    shots = 4096
    executor = context.executor
    baseline_counts = executor.submit(
        Job(
            compiled.nativized(result.reference_sequence, name_suffix="_base"),
            shots,
            tag="final",
        )
    ).counts
    angel_counts = executor.submit(
        Job(angel.nativize(compiled, result), shots, tag="final")
    ).counts
    baseline_sr = success_rate_from_counts(ideal, baseline_counts)
    angel_sr = success_rate_from_counts(ideal, angel_counts)
    print(f"\nbaseline (noise-adaptive) SR: {baseline_sr:.3f}")
    print(f"ANGEL SR:                     {angel_sr:.3f} "
          f"({angel_sr / baseline_sr:.2f}x)")
    print("\nexecution-service ledger:")
    print(executor.stats.to_text())


if __name__ == "__main__":
    main()
