"""Characterize a device the way Section III of the paper does.

Three mini-studies on the simulated Aspen-11, using the library's
device, calibration, and metrics APIs directly:

1. per-link calibrated fidelities and the noise-adaptive pick;
2. state dependence: the micro-benchmark winner changes with the
   prepared state (Fig. 5's observation);
3. staleness: the published CPHASE fidelity versus the device's true
   fidelity after a day of drift (Fig. 8's observation).

Run:  python examples/characterize_device.py
"""

import math

from repro.experiments import ExperimentContext
from repro.experiments.characterization import (
    THETA_GRID,
    micro_benchmark_circuit,
)
from repro.metrics import success_rate


def main() -> None:
    context = ExperimentContext.create(seed=23, drift_hours=30.0)
    device, calibration = context.device, context.calibration

    print("1) calibrated per-link fidelities (first five links)")
    for link in device.topology.links[:5]:
        entries = []
        for gate in device.supported_gates(*link):
            fid = calibration.two_qubit_fidelity(link, gate)
            entries.append(f"{gate}={fid:.4f}")
        best = calibration.best_native_gate(link)
        print(f"   link {link}: {', '.join(entries)}  -> pick {best.upper()}")

    print("\n2) state dependence on one link (micro-benchmark B)")
    link = context.pick_link()
    gates = device.supported_gates(*link)
    header = "   theta     " + "".join(f"{g.upper():>10s}" for g in gates)
    print(header + "    winner")
    for theta in THETA_GRID:
        p1 = math.sin(theta / 2) ** 2
        ideal = {k: v for k, v in (("00", 1 - p1), ("11", p1)) if v > 1e-12}
        srs = {}
        for gate in gates:
            circuit = micro_benchmark_circuit(link, gate, theta, axis="y")
            srs[gate] = success_rate(ideal, device.noisy_distribution(circuit))
        winner = max(srs, key=srs.get)
        cells = "".join(f"{srs[g]:>10.3f}" for g in gates)
        print(f"   {theta:7.4f} {cells}    {winner.upper()}")

    print("\n3) staleness: reported vs true CPHASE fidelity")
    for link in device.topology.links[:5]:
        if "cphase" not in device.supported_gates(*link):
            continue
        reported = calibration.two_qubit_fidelity(link, "cphase")
        true = device.true_pulse_fidelity(link, "cphase")
        age_h = calibration.two_qubit[(link, "cphase")].age_us(
            device.clock_us
        ) / 3.6e9
        print(
            f"   link {link}: reported {reported:.4f} "
            f"(age {age_h:.0f}h) vs true {true:.4f} "
            f"(gap {abs(reported - true):.4f})"
        )


if __name__ == "__main__":
    main()
